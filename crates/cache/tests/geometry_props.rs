//! Property tests for address geometry and the line protocol.

use cgct_cache::{
    requester_next_state, snoop_line, Addr, Geometry, LineSnoopResponse, MoesiState, ReqKind,
};
use cgct_sim::check::{check, gen_vec};
use cgct_sim::Xoshiro256pp;

fn gen_geometry(g: &mut Xoshiro256pp) -> Geometry {
    let line_log = g.gen_range(6u32..9);
    let extra = g.gen_range(0u32..5);
    Geometry::new(1 << line_log, 1 << (line_log + extra))
}

fn gen_state(g: &mut Xoshiro256pp) -> MoesiState {
    *g.choose(&[
        MoesiState::Modified,
        MoesiState::Owned,
        MoesiState::Exclusive,
        MoesiState::Shared,
        MoesiState::Invalid,
    ])
    .unwrap()
}

fn gen_req(g: &mut Xoshiro256pp) -> ReqKind {
    *g.choose(&[
        ReqKind::Read,
        ReqKind::ReadShared,
        ReqKind::ReadExclusive,
        ReqKind::Upgrade,
        ReqKind::Writeback,
        ReqKind::Dcbz,
    ])
    .unwrap()
}

#[test]
fn line_and_region_mappings_are_consistent() {
    check(
        "geometry::line_and_region_mappings_are_consistent",
        64,
        |rng| {
            let g = gen_geometry(rng);
            let a = Addr(rng.gen_range(0u64..(1 << 40)));
            let line = g.line_of(a);
            let region = g.region_of(a);
            // The line's region is the address's region.
            assert_eq!(g.region_of_line(line), region);
            // The line base maps back to the same line, ditto regions.
            assert_eq!(g.line_of(g.line_base(line)), line);
            assert_eq!(g.region_of(g.region_base(region)), region);
            // The line is enumerated by its region, exactly once.
            let hits = g.lines_in_region(region).filter(|&l| l == line).count();
            assert_eq!(hits, 1);
            // Index within region is within bounds and consistent.
            assert!(g.line_index_in_region(line) < g.lines_per_region());
        },
    );
}

#[test]
fn lines_per_region_matches_enumeration() {
    check(
        "geometry::lines_per_region_matches_enumeration",
        64,
        |rng| {
            let g = gen_geometry(rng);
            let r = cgct_cache::RegionAddr(rng.gen_range(0u64..(1 << 25)));
            assert_eq!(g.lines_in_region(r).count() as u64, g.lines_per_region());
            // All enumerated lines belong to the region.
            for l in g.lines_in_region(r) {
                assert_eq!(g.region_of_line(l), r);
            }
        },
    );
}

#[test]
fn snoop_never_leaves_writable_copies_behind_invalidating_requests() {
    check(
        "geometry::snoop_never_leaves_writable_copies_behind_invalidating_requests",
        64,
        |rng| {
            let s = gen_state(rng);
            let req = gen_req(rng);
            let out = snoop_line(s, req);
            if req.invalidates_others() {
                assert_eq!(out.next, MoesiState::Invalid);
            }
            // Snooping never upgrades a copy's write permission.
            assert!(!out.next.can_silently_modify() || s.can_silently_modify());
        },
    );
}

#[test]
fn requester_and_snooper_states_always_compatible() {
    check(
        "geometry::requester_and_snooper_states_always_compatible",
        64,
        |rng| {
            let states = gen_vec(rng, 1..4, gen_state);
            let req = gen_req(rng);
            // Merge the snoop outcome across an arbitrary set of snoopers and
            // check the requester's fill never creates a second writable copy.
            let mut resp = LineSnoopResponse::default();
            let mut nexts = Vec::new();
            for &s in &states {
                let out = snoop_line(s, req);
                resp.merge(out.response);
                nexts.push(out.next);
            }
            if let Some(fill) = requester_next_state(req, resp) {
                if fill.can_silently_modify() {
                    for (&_before, &after) in states.iter().zip(&nexts) {
                        assert_eq!(
                            after,
                            MoesiState::Invalid,
                            "requester fills {fill:?} but a snooper kept {after:?}"
                        );
                    }
                }
                if fill == MoesiState::Exclusive {
                    // E fill only when nobody reported a copy.
                    assert!(!resp.shared);
                }
            }
        },
    );
}
