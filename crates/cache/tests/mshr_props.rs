//! Property suite for the MSHR file: random operation sequences checked
//! against a naive insertion-ordered reference model.

use cgct_cache::{LineAddr, MshrFile};
use cgct_sim::check::check;
use cgct_sim::rng::Xoshiro256pp;

/// The obviously-correct reference: a capacity-bounded list of
/// `(line, waiters)` pairs in allocation order. No slot indices, no
/// reuse logic — just the architectural contract.
struct Reference {
    capacity: usize,
    entries: Vec<(u64, Vec<u32>)>,
}

impl Reference {
    fn new(capacity: usize) -> Self {
        Reference {
            capacity,
            entries: Vec::new(),
        }
    }

    /// A miss for `line` with token `waiter`: merge if tracked, allocate
    /// if there is room, refuse otherwise. Returns whether it fit.
    fn miss(&mut self, line: u64, waiter: u32) -> bool {
        if let Some((_, w)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            w.push(waiter);
            true
        } else if self.entries.len() < self.capacity {
            self.entries.push((line, vec![waiter]));
            true
        } else {
            false
        }
    }

    fn complete(&mut self, line: u64) -> Vec<u32> {
        let i = self
            .entries
            .iter()
            .position(|(l, _)| *l == line)
            .expect("completing a tracked line");
        self.entries.remove(i).1
    }
}

/// Cross-checks every observable of the real file against the reference.
fn assert_agrees(m: &MshrFile<u32>, r: &Reference, step: usize) {
    assert_eq!(m.in_use(), r.entries.len(), "step {step}: in_use");
    assert_eq!(
        m.is_full(),
        r.entries.len() == r.capacity,
        "step {step}: is_full"
    );
    for (line, waiters) in &r.entries {
        let id = m
            .find(LineAddr(*line))
            .unwrap_or_else(|| panic!("step {step}: line {line} lost"));
        assert_eq!(m.line(id), LineAddr(*line), "step {step}: line accessor");
        assert_eq!(
            m.primary(id),
            waiters.first().expect("allocation recorded a waiter"),
            "step {step}: primary waiter"
        );
        assert_eq!(
            m.get_primary(id),
            waiters.first(),
            "step {step}: get_primary"
        );
    }
}

/// One random op: a miss to a line from a small pool (forcing merges and
/// capacity pressure) or a completion of a random tracked line.
fn random_step(
    g: &mut Xoshiro256pp,
    m: &mut MshrFile<u32>,
    r: &mut Reference,
    next_token: &mut u32,
    step: usize,
) {
    let complete = !r.entries.is_empty() && g.gen_range(0u32..3) == 0;
    if complete {
        let line = r.entries[g.gen_range(0..r.entries.len())].0;
        let expected = r.complete(line);
        let id = m.find(LineAddr(line)).expect("tracked line has a slot");
        let (got_line, got_waiters) = m.complete(id);
        // Fill/release ordering: waiters come back in exact arrival
        // order (primary first, merges after, FIFO).
        assert_eq!(got_line, LineAddr(line), "step {step}: completed line");
        assert_eq!(got_waiters, expected, "step {step}: waiter order");
        assert_eq!(m.find(LineAddr(line)), None, "step {step}: slot freed");
    } else {
        let line = g.gen_range(0u64..12);
        let token = *next_token;
        *next_token += 1;
        let had_slot = m.find(LineAddr(line));
        let fits = r.miss(line, token);
        match had_slot {
            // Merge-on-match: a tracked line never allocates a second
            // slot, it joins the existing one.
            Some(id) => {
                assert!(fits);
                m.add_waiter(id, token);
                assert_eq!(m.find(LineAddr(line)), Some(id), "step {step}: merged");
            }
            None => {
                let allocated = m.allocate(LineAddr(line), token);
                // Capacity refusal: allocation fails exactly when the
                // file is full.
                assert_eq!(allocated.is_some(), fits, "step {step}: capacity");
                if let Some(id) = allocated {
                    assert_eq!(m.line(id), LineAddr(line));
                }
            }
        }
    }
}

#[test]
fn random_sequences_match_the_reference_model() {
    check("mshr matches reference", 256, |g| {
        let capacity = g.gen_range(1usize..6);
        let mut m: MshrFile<u32> = MshrFile::new(capacity);
        let mut r = Reference::new(capacity);
        let mut next_token = 0u32;
        let steps = g.gen_range(10usize..120);
        for step in 0..steps {
            random_step(g, &mut m, &mut r, &mut next_token, step);
            assert_agrees(&m, &r, step);
        }
    });
}

#[test]
fn draining_returns_every_waiter_exactly_once() {
    check("mshr conserves waiters", 128, |g| {
        let capacity = g.gen_range(1usize..5);
        let mut m: MshrFile<u32> = MshrFile::new(capacity);
        let mut r = Reference::new(capacity);
        let mut next_token = 0u32;
        let mut refused = 0u32;
        for _ in 0..g.gen_range(5usize..60) {
            let line = g.gen_range(0u64..8);
            let token = next_token;
            next_token += 1;
            match m.find(LineAddr(line)) {
                Some(id) => m.add_waiter(id, token),
                None => {
                    if m.allocate(LineAddr(line), token).is_none() {
                        refused += 1;
                    }
                }
            }
            r.miss(line, token);
        }
        // Drain everything; each accepted token appears exactly once.
        let mut seen: Vec<u32> = Vec::new();
        while let Some((line, _)) = r.entries.first().cloned() {
            let id = m.find(LineAddr(line)).expect("tracked");
            let (_, waiters) = m.complete(id);
            assert_eq!(waiters, r.complete(line), "waiter order on drain");
            seen.extend(waiters);
        }
        assert_eq!(m.in_use(), 0);
        assert_eq!(seen.len() as u32 + refused, next_token, "tokens conserved");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u32 + refused, next_token, "no duplicates");
    });
}

#[test]
fn slots_recycle_under_sustained_pressure() {
    check("mshr slot recycling", 64, |g| {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        for round in 0..g.gen_range(3usize..20) {
            let a = m.allocate(LineAddr(round as u64 * 2), 0).expect("slot");
            let b = m.allocate(LineAddr(round as u64 * 2 + 1), 1).expect("slot");
            assert!(m.is_full());
            assert_eq!(m.allocate(LineAddr(999), 2), None, "full file refuses");
            m.complete(a);
            m.complete(b);
            assert_eq!(m.in_use(), 0, "all slots recycled");
        }
    });
}
