//! Model-based property tests: `SetAssocArray` against a reference
//! implementation with explicit per-set LRU lists.

use cgct_cache::SetAssocArray;
use cgct_sim::check::{check, gen_vec};
use cgct_sim::Xoshiro256pp;
use std::collections::HashMap;

/// Reference model: per-set vector of keys in LRU order (front = LRU).
struct Model {
    sets: usize,
    ways: usize,
    lru: HashMap<usize, Vec<u64>>,
    values: HashMap<u64, u32>,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            lru: HashMap::new(),
            values: HashMap::new(),
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) % self.sets
    }

    fn touch(&mut self, key: u64) {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
        }
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
            return self.values.insert(key, value).map(|old| (key, old));
        }
        let evicted = if order.len() == self.ways {
            let victim = order.remove(0);
            let old = self.values.remove(&victim).expect("victim has value");
            Some((victim, old))
        } else {
            None
        };
        order.push(key);
        self.values.insert(key, value);
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let set = self.set_of(key);
        if let Some(order) = self.lru.get_mut(&set) {
            if let Some(pos) = order.iter().position(|&k| k == key) {
                order.remove(pos);
            }
        }
        self.values.remove(&key)
    }

    fn get(&self, key: u64) -> Option<u32> {
        self.values.get(&key).copied()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u32),
    Access(u64),
    Get(u64),
    Remove(u64),
}

fn gen_ops(g: &mut Xoshiro256pp, max_key: u64) -> Vec<Op> {
    gen_vec(g, 1..300, |g| {
        let k = g.gen_range(0..max_key);
        match g.gen_range(0u8..4) {
            0 => Op::Insert(k, g.next_u32()),
            1 => Op::Access(k),
            2 => Op::Get(k),
            _ => Op::Remove(k),
        }
    })
}

#[test]
fn matches_reference_lru_model() {
    check("array_model::matches_reference_lru_model", 64, |g| {
        let sets_log = g.gen_range(0usize..4);
        let ways = g.gen_range(1usize..5);
        let ops = gen_ops(g, 64);
        let sets = 1usize << sets_log;
        let mut real: SetAssocArray<u32> = SetAssocArray::new(sets, ways);
        let mut model = Model::new(sets, ways);
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let a = real.insert_lru(k, v);
                    let b = model.insert(k, v);
                    assert_eq!(a, b, "insert({k}, {v})");
                }
                Op::Access(k) => {
                    let a = real.access(k).copied();
                    model.touch(k);
                    let b = model.get(k);
                    assert_eq!(a, b, "access({k})");
                }
                Op::Get(k) => {
                    assert_eq!(real.get(k).copied(), model.get(k), "get({k})");
                }
                Op::Remove(k) => {
                    assert_eq!(real.remove(k), model.get(k), "remove({k})");
                    model.remove(k);
                }
            }
            assert_eq!(real.len(), model.values.len());
        }
        // Final contents agree.
        let mut real_pairs: Vec<(u64, u32)> = real.iter().map(|(k, v)| (k, *v)).collect();
        real_pairs.sort_unstable();
        let mut model_pairs: Vec<(u64, u32)> = model.values.iter().map(|(&k, &v)| (k, v)).collect();
        model_pairs.sort_unstable();
        assert_eq!(real_pairs, model_pairs);
    });
}

#[test]
fn occupancy_never_exceeds_ways() {
    check("array_model::occupancy_never_exceeds_ways", 64, |g| {
        let ways = g.gen_range(1usize..4);
        let keys = gen_vec(g, 1..200, |g| g.gen_range(0u64..256));
        let mut a: SetAssocArray<()> = SetAssocArray::new(8, ways);
        for k in keys {
            a.insert_lru(k, ());
            for set_key in 0..8u64 {
                assert!(a.set_occupancy(set_key) <= ways);
            }
        }
        assert!(a.len() <= a.capacity());
    });
}
