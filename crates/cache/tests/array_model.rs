//! Model-based property tests: `SetAssocArray` against a reference
//! implementation with explicit per-set LRU lists.

use cgct_cache::SetAssocArray;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: per-set vector of keys in LRU order (front = LRU).
struct Model {
    sets: usize,
    ways: usize,
    lru: HashMap<usize, Vec<u64>>,
    values: HashMap<u64, u32>,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            lru: HashMap::new(),
            values: HashMap::new(),
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) % self.sets
    }

    fn touch(&mut self, key: u64) {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
        }
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
            return self.values.insert(key, value).map(|old| (key, old));
        }
        let evicted = if order.len() == self.ways {
            let victim = order.remove(0);
            let old = self.values.remove(&victim).expect("victim has value");
            Some((victim, old))
        } else {
            None
        };
        order.push(key);
        self.values.insert(key, value);
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let set = self.set_of(key);
        if let Some(order) = self.lru.get_mut(&set) {
            if let Some(pos) = order.iter().position(|&k| k == key) {
                order.remove(pos);
            }
        }
        self.values.remove(&key)
    }

    fn get(&self, key: u64) -> Option<u32> {
        self.values.get(&key).copied()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u32),
    Access(u64),
    Get(u64),
    Remove(u64),
}

fn ops(max_key: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_key, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0..max_key).prop_map(Op::Access),
            (0..max_key).prop_map(Op::Get),
            (0..max_key).prop_map(Op::Remove),
        ],
        1..300,
    )
}

proptest! {
    #[test]
    fn matches_reference_lru_model(
        sets_log in 0usize..4,
        ways in 1usize..5,
        ops in ops(64),
    ) {
        let sets = 1usize << sets_log;
        let mut real: SetAssocArray<u32> = SetAssocArray::new(sets, ways);
        let mut model = Model::new(sets, ways);
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let a = real.insert_lru(k, v);
                    let b = model.insert(k, v);
                    prop_assert_eq!(a, b, "insert({}, {})", k, v);
                }
                Op::Access(k) => {
                    let a = real.access(k).copied();
                    model.touch(k);
                    let b = model.get(k);
                    prop_assert_eq!(a, b, "access({})", k);
                }
                Op::Get(k) => {
                    prop_assert_eq!(real.get(k).copied(), model.get(k), "get({})", k);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(real.remove(k), model.get(k), "remove({})", k);
                    model.remove(k);
                }
            }
            prop_assert_eq!(real.len(), model.values.len());
        }
        // Final contents agree.
        let mut real_pairs: Vec<(u64, u32)> = real.iter().map(|(k, v)| (k, *v)).collect();
        real_pairs.sort_unstable();
        let mut model_pairs: Vec<(u64, u32)> = model.values.iter().map(|(&k, &v)| (k, v)).collect();
        model_pairs.sort_unstable();
        prop_assert_eq!(real_pairs, model_pairs);
    }

    #[test]
    fn occupancy_never_exceeds_ways(
        ways in 1usize..4,
        keys in prop::collection::vec(0u64..256, 1..200),
    ) {
        let mut a: SetAssocArray<()> = SetAssocArray::new(8, ways);
        for k in keys {
            a.insert_lru(k, ());
            for set_key in 0..8u64 {
                prop_assert!(a.set_occupancy(set_key) <= ways);
            }
        }
        prop_assert!(a.len() <= a.capacity());
    }
}
