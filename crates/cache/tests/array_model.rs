//! Model-based property tests: `SetAssocArray` against a reference
//! implementation with explicit per-set LRU lists.

#![allow(clippy::disallowed_types)]
// ^ D002 mirror (clippy.toml): test code is exempt by policy

use cgct_cache::{LookupOutcome, SetAssocArray};
use cgct_sim::check::{check, gen_vec};
use cgct_sim::Xoshiro256pp;
use std::collections::HashMap;

/// Reference model: per-set vector of keys in LRU order (front = LRU).
struct Model {
    sets: usize,
    ways: usize,
    lru: HashMap<usize, Vec<u64>>,
    values: HashMap<u64, u32>,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            lru: HashMap::new(),
            values: HashMap::new(),
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) % self.sets
    }

    fn touch(&mut self, key: u64) {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
        }
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        let set = self.set_of(key);
        let order = self.lru.entry(set).or_default();
        if let Some(pos) = order.iter().position(|&k| k == key) {
            let k = order.remove(pos);
            order.push(k);
            return self.values.insert(key, value).map(|old| (key, old));
        }
        let evicted = if order.len() == self.ways {
            let victim = order.remove(0);
            let old = self.values.remove(&victim).expect("victim has value");
            Some((victim, old))
        } else {
            None
        };
        order.push(key);
        self.values.insert(key, value);
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let set = self.set_of(key);
        if let Some(order) = self.lru.get_mut(&set) {
            if let Some(pos) = order.iter().position(|&k| k == key) {
                order.remove(pos);
            }
        }
        self.values.remove(&key)
    }

    fn get(&self, key: u64) -> Option<u32> {
        self.values.get(&key).copied()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u32),
    Access(u64),
    Get(u64),
    Remove(u64),
}

fn gen_ops(g: &mut Xoshiro256pp, max_key: u64) -> Vec<Op> {
    gen_vec(g, 1..300, |g| {
        let k = g.gen_range(0..max_key);
        match g.gen_range(0u8..4) {
            0 => Op::Insert(k, g.next_u32()),
            1 => Op::Access(k),
            2 => Op::Get(k),
            _ => Op::Remove(k),
        }
    })
}

#[test]
fn matches_reference_lru_model() {
    check("array_model::matches_reference_lru_model", 64, |g| {
        let sets_log = g.gen_range(0usize..4);
        let ways = g.gen_range(1usize..5);
        let ops = gen_ops(g, 64);
        let sets = 1usize << sets_log;
        let mut real: SetAssocArray<u32> = SetAssocArray::new(sets, ways);
        let mut model = Model::new(sets, ways);
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let a = real.insert_lru(k, v);
                    let b = model.insert(k, v);
                    assert_eq!(a, b, "insert({k}, {v})");
                }
                Op::Access(k) => {
                    let a = real.access(k).copied();
                    model.touch(k);
                    let b = model.get(k);
                    assert_eq!(a, b, "access({k})");
                }
                Op::Get(k) => {
                    assert_eq!(real.get(k).copied(), model.get(k), "get({k})");
                }
                Op::Remove(k) => {
                    assert_eq!(real.remove(k), model.get(k), "remove({k})");
                    model.remove(k);
                }
            }
            assert_eq!(real.len(), model.values.len());
        }
        // Final contents agree.
        let mut real_pairs: Vec<(u64, u32)> = real.iter().map(|(k, v)| (k, *v)).collect();
        real_pairs.sort_unstable();
        let mut model_pairs: Vec<(u64, u32)> = model.values.iter().map(|(&k, &v)| (k, v)).collect();
        model_pairs.sort_unstable();
        assert_eq!(real_pairs, model_pairs);
    });
}

/// A set drained by `remove` must behave exactly like a never-used set:
/// reinsertions take free ways (no phantom evictions), and the stale
/// tags the removed entries leave behind in their ways must never
/// produce a hit — neither for the removed key itself nor for a
/// different key whose tag happens to collide.
#[test]
fn insert_into_set_emptied_by_remove_uses_free_ways() {
    let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 2);
    // Keys 1, 5, 9 all map to set 1 (tags 0, 1, 2).
    a.insert_lru(1, 10);
    a.insert_lru(5, 50);
    assert_eq!(a.remove(1), Some(10));
    assert_eq!(a.remove(5), Some(50));
    assert_eq!(a.len(), 0);
    assert_eq!(a.lookup(9), LookupOutcome::MissFree);
    // Stale tags are invisible to probes...
    assert!(!a.contains(1) && !a.contains(5));
    assert_eq!(a.get(1), None);
    assert_eq!(a.access(5), None);
    // ...and to insertion: both ways are free again, nothing is evicted.
    assert!(a.insert_lru(9, 90).is_none());
    assert!(a.insert_lru(1, 11).is_none());
    assert_eq!(a.len(), 2);
    assert_eq!(a.lookup(5), LookupOutcome::MissFull);
    assert_eq!(a.get(1), Some(&11));
    assert_eq!(a.get(9), Some(&90));
    assert!(!a.contains(5));
}

/// The branch-lean `find` fast path (tag compare first, validity only on
/// a tag match) must classify probes exactly like a naive scan of the
/// live contents — across hits, free-way misses, full-set misses, and
/// the stale-tag ways that removals leave behind.
#[test]
fn lookup_and_contains_match_naive_reference() {
    check(
        "array_model::lookup_and_contains_match_naive_reference",
        64,
        |g| {
            let sets = 1usize << g.gen_range(0usize..4);
            let ways = g.gen_range(1usize..5);
            let ops = gen_ops(g, 48);
            let mut real: SetAssocArray<u32> = SetAssocArray::new(sets, ways);
            // Naive reference: the live (key, value) pairs, scanned linearly.
            let mut naive: Vec<(u64, u32)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        // A replace-on-hit reports the key itself as the
                        // displaced pair, so a single retain covers both it
                        // and a genuine eviction.
                        if let Some((victim, _)) = real.insert_lru(k, v) {
                            naive.retain(|&(nk, _)| nk != victim);
                        }
                        naive.push((k, v));
                    }
                    Op::Access(k) => {
                        real.touch(k);
                    }
                    Op::Get(_) => {}
                    Op::Remove(k) => {
                        real.remove(k);
                        naive.retain(|&(nk, _)| nk != k);
                    }
                }
                // Probe every key in range, present or not: the fast path
                // and the naive scan must agree on all of them.
                for k in 0..48u64 {
                    let hit = naive.iter().any(|&(nk, _)| nk == k);
                    assert_eq!(real.contains(k), hit, "contains({k})");
                    let in_set = naive
                        .iter()
                        .filter(|&&(nk, _)| (nk as usize) % sets == (k as usize) % sets)
                        .count();
                    let want = if hit {
                        LookupOutcome::Hit
                    } else if in_set < ways {
                        LookupOutcome::MissFree
                    } else {
                        LookupOutcome::MissFull
                    };
                    assert_eq!(real.lookup(k), want, "lookup({k})");
                }
            }
        },
    );
}

#[test]
fn occupancy_never_exceeds_ways() {
    check("array_model::occupancy_never_exceeds_ways", 64, |g| {
        let ways = g.gen_range(1usize..4);
        let keys = gen_vec(g, 1..200, |g| g.gen_range(0u64..256));
        let mut a: SetAssocArray<()> = SetAssocArray::new(8, ways);
        for k in keys {
            a.insert_lru(k, ());
            for set_key in 0..8u64 {
                assert!(a.set_occupancy(set_key) <= ways);
            }
        }
        assert!(a.len() <= a.capacity());
    });
}
