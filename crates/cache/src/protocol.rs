//! Line-grain write-invalidate MOESI snooping protocol.
//!
//! These are pure transition functions: given a request kind and the state
//! of a line in a snooped cache, they return the snooper's next state and
//! required action, and given the aggregated snoop response they return the
//! requester's fill state. The system crate sequences them over the
//! simulated interconnect.

use crate::state::MoesiState;

/// The kinds of memory request that reach the coherence point (L2 miss
/// stream plus permission upgrades, write-backs and DCB operations).
///
/// Loads issue [`ReqKind::Read`] and obtain an exclusive copy when no other
/// cache holds the line (the paper's §3.1: "loads are not prevented from
/// obtaining exclusive copies"). Instruction fetches issue
/// [`ReqKind::ReadShared`] and always fill shared/clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Data read (load or data prefetch); fills E when unshared, S otherwise.
    Read,
    /// Instruction fetch; always fills S.
    ReadShared,
    /// Read-for-ownership (store miss or exclusive prefetch); fills M.
    ReadExclusive,
    /// Permission upgrade of an S/O copy to M; carries no data.
    Upgrade,
    /// Write-back of a dirty (M/O) line to memory.
    Writeback,
    /// Data Cache Block Zero: allocate the line zeroed in M without
    /// reading memory; invalidates all other copies (PowerPC `dcbz`,
    /// used heavily by AIX for page zeroing).
    Dcbz,
}

impl ReqKind {
    /// Whether this request transfers a data line to the requester.
    pub fn needs_data(self) -> bool {
        matches!(
            self,
            ReqKind::Read | ReqKind::ReadShared | ReqKind::ReadExclusive
        )
    }

    /// Whether this request invalidates all other cached copies.
    pub fn invalidates_others(self) -> bool {
        matches!(
            self,
            ReqKind::ReadExclusive | ReqKind::Upgrade | ReqKind::Dcbz
        )
    }

    /// Whether the requester ends up with a modifiable (M) copy.
    pub fn wants_modifiable(self) -> bool {
        self.invalidates_others()
    }
}

/// What a snooped cache must do in response to an external request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// Nothing: the line was not cached or needs no action.
    None,
    /// Supply the line to the requester (cache-to-cache transfer).
    SupplyData,
}

/// One snooped cache's contribution to the line snoop response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineSnoopResponse {
    /// Some other cache holds a valid copy (any of M/O/E/S).
    pub shared: bool,
    /// Some other cache holds the line dirty (M/O) and supplies the data.
    pub dirty: bool,
    /// Some other cache holds the line exclusively-clean (E). E copies can
    /// be modified silently, so memory data may go stale without a
    /// broadcast; region-grain tracking must treat E like dirty.
    pub exclusive: bool,
}

impl LineSnoopResponse {
    /// Merges another snooper's contribution (wired-OR on the bus).
    pub fn merge(&mut self, other: LineSnoopResponse) {
        self.shared |= other.shared;
        self.dirty |= other.dirty;
        self.exclusive |= other.exclusive;
    }

    /// Whether memory can safely supply current data for a *shared* read
    /// without informing other caches: true when no cache holds M/O/E.
    pub fn memory_is_safe_source(&self) -> bool {
        !self.dirty && !self.exclusive
    }
}

/// The outcome of snooping one cache: next state for the line plus the
/// action and response contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopOutcome {
    /// Snooper's next state for the line.
    pub next: MoesiState,
    /// Required data action.
    pub action: SnoopAction,
    /// Contribution to the aggregated snoop response (describes the state
    /// *before* the transition).
    pub response: LineSnoopResponse,
}

/// Applies an external request `req` to a snooped cache whose current state
/// for the line is `state`.
///
/// # Examples
///
/// ```
/// use cgct_cache::{snoop_line, MoesiState, ReqKind, SnoopAction};
/// let out = snoop_line(MoesiState::Modified, ReqKind::Read);
/// assert_eq!(out.next, MoesiState::Owned);
/// assert_eq!(out.action, SnoopAction::SupplyData);
/// assert!(out.response.dirty);
/// ```
pub fn snoop_line(state: MoesiState, req: ReqKind) -> SnoopOutcome {
    use MoesiState::*;
    let response = LineSnoopResponse {
        shared: state.is_valid(),
        dirty: state.is_dirty(),
        exclusive: state == Exclusive,
    };
    let (next, action) = match req {
        // External data read: owner supplies and retains ownership (O);
        // clean copies downgrade to S.
        ReqKind::Read | ReqKind::ReadShared => match state {
            Modified => (Owned, SnoopAction::SupplyData),
            Owned => (Owned, SnoopAction::SupplyData),
            Exclusive => (Shared, SnoopAction::None),
            Shared => (Shared, SnoopAction::None),
            Invalid => (Invalid, SnoopAction::None),
        },
        // External RFO: everyone invalidates; the owner supplies data.
        ReqKind::ReadExclusive => match state {
            Modified | Owned => (Invalid, SnoopAction::SupplyData),
            Exclusive | Shared => (Invalid, SnoopAction::None),
            Invalid => (Invalid, SnoopAction::None),
        },
        // Upgrade: requester already holds current data; others invalidate.
        // DCBZ: requester will zero the line; no data transfer at all.
        ReqKind::Upgrade | ReqKind::Dcbz => (Invalid, SnoopAction::None),
        // Write-backs need no action from other caches (§5.1): they are
        // broadcast in the baseline only to locate the memory controller.
        ReqKind::Writeback => (state, SnoopAction::None),
    };
    SnoopOutcome {
        next,
        action,
        response,
    }
}

/// The requester's fill state after its broadcast completes with the
/// aggregated `response`.
///
/// Returns `None` for [`ReqKind::Writeback`], which leaves no line behind.
///
/// # Examples
///
/// ```
/// use cgct_cache::{requester_next_state, LineSnoopResponse, MoesiState, ReqKind};
/// let nobody = LineSnoopResponse::default();
/// assert_eq!(requester_next_state(ReqKind::Read, nobody), Some(MoesiState::Exclusive));
/// let shared = LineSnoopResponse { shared: true, ..nobody };
/// assert_eq!(requester_next_state(ReqKind::Read, shared), Some(MoesiState::Shared));
/// ```
pub fn requester_next_state(req: ReqKind, response: LineSnoopResponse) -> Option<MoesiState> {
    use MoesiState::*;
    match req {
        ReqKind::Read => Some(if response.shared { Shared } else { Exclusive }),
        ReqKind::ReadShared => Some(Shared),
        ReqKind::ReadExclusive | ReqKind::Upgrade | ReqKind::Dcbz => Some(Modified),
        ReqKind::Writeback => None,
    }
}

/// Oracle rule (Figure 2): would this broadcast have been unnecessary given
/// perfect knowledge of the other caches' states?
///
/// * Write-backs never need to be seen by other processors.
/// * A shared read (ifetch) can go straight to memory when no other cache
///   holds the line in M, O, or E (memory data is current and cannot go
///   stale silently).
/// * All other requests can skip the broadcast only when no other cache
///   holds any copy at all.
pub fn broadcast_unnecessary(req: ReqKind, response: LineSnoopResponse) -> bool {
    match req {
        ReqKind::Writeback => true,
        ReqKind::ReadShared => response.memory_is_safe_source(),
        ReqKind::Read | ReqKind::ReadExclusive | ReqKind::Upgrade | ReqKind::Dcbz => {
            !response.shared
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MoesiState::*;

    const ALL_STATES: [MoesiState; 5] = [Modified, Owned, Exclusive, Shared, Invalid];
    const ALL_REQS: [ReqKind; 6] = [
        ReqKind::Read,
        ReqKind::ReadShared,
        ReqKind::ReadExclusive,
        ReqKind::Upgrade,
        ReqKind::Writeback,
        ReqKind::Dcbz,
    ];

    #[test]
    fn external_read_downgrades_owner_to_owned() {
        let out = snoop_line(Modified, ReqKind::Read);
        assert_eq!(out.next, Owned);
        assert_eq!(out.action, SnoopAction::SupplyData);
        let out = snoop_line(Owned, ReqKind::ReadShared);
        assert_eq!(out.next, Owned);
        assert_eq!(out.action, SnoopAction::SupplyData);
    }

    #[test]
    fn external_read_downgrades_exclusive_to_shared() {
        let out = snoop_line(Exclusive, ReqKind::Read);
        assert_eq!(out.next, Shared);
        assert_eq!(out.action, SnoopAction::None);
        assert!(out.response.exclusive);
    }

    #[test]
    fn rfo_invalidates_everyone() {
        for s in ALL_STATES {
            let out = snoop_line(s, ReqKind::ReadExclusive);
            assert_eq!(out.next, Invalid, "from {s}");
            assert_eq!(out.action == SnoopAction::SupplyData, s.is_dirty());
        }
    }

    #[test]
    fn upgrade_and_dcbz_invalidate_without_supply() {
        for req in [ReqKind::Upgrade, ReqKind::Dcbz] {
            for s in ALL_STATES {
                let out = snoop_line(s, req);
                assert_eq!(out.next, Invalid);
                assert_eq!(out.action, SnoopAction::None);
            }
        }
    }

    #[test]
    fn writeback_is_a_no_op_for_snoopers() {
        for s in ALL_STATES {
            let out = snoop_line(s, ReqKind::Writeback);
            assert_eq!(out.next, s);
            assert_eq!(out.action, SnoopAction::None);
        }
    }

    #[test]
    fn response_reflects_pre_transition_state() {
        let out = snoop_line(Modified, ReqKind::ReadExclusive);
        assert!(out.response.dirty && out.response.shared);
        let out = snoop_line(Invalid, ReqKind::Read);
        assert_eq!(out.response, LineSnoopResponse::default());
    }

    #[test]
    fn requester_read_fill_state_depends_on_sharers() {
        let nobody = LineSnoopResponse::default();
        assert_eq!(requester_next_state(ReqKind::Read, nobody), Some(Exclusive));
        let shared = LineSnoopResponse {
            shared: true,
            ..Default::default()
        };
        assert_eq!(requester_next_state(ReqKind::Read, shared), Some(Shared));
        assert_eq!(
            requester_next_state(ReqKind::ReadShared, nobody),
            Some(Shared)
        );
    }

    #[test]
    fn requester_modifiable_requests_fill_modified() {
        let resp = LineSnoopResponse {
            shared: true,
            dirty: true,
            exclusive: false,
        };
        for req in [ReqKind::ReadExclusive, ReqKind::Upgrade, ReqKind::Dcbz] {
            assert_eq!(requester_next_state(req, resp), Some(Modified));
        }
        assert_eq!(requester_next_state(ReqKind::Writeback, resp), None);
    }

    #[test]
    fn merge_is_wired_or() {
        let mut r = LineSnoopResponse::default();
        r.merge(LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: false,
        });
        r.merge(LineSnoopResponse {
            shared: true,
            dirty: true,
            exclusive: false,
        });
        assert!(r.shared && r.dirty && !r.exclusive);
    }

    #[test]
    fn oracle_rules() {
        let nobody = LineSnoopResponse::default();
        let s_only = LineSnoopResponse {
            shared: true,
            ..Default::default()
        };
        let e_elsewhere = LineSnoopResponse {
            shared: true,
            exclusive: true,
            ..Default::default()
        };
        let dirty = LineSnoopResponse {
            shared: true,
            dirty: true,
            ..Default::default()
        };
        // Writebacks: always unnecessary.
        assert!(broadcast_unnecessary(ReqKind::Writeback, dirty));
        // Ifetch: unnecessary when clean-shared or uncached.
        assert!(broadcast_unnecessary(ReqKind::ReadShared, nobody));
        assert!(broadcast_unnecessary(ReqKind::ReadShared, s_only));
        assert!(!broadcast_unnecessary(ReqKind::ReadShared, e_elsewhere));
        assert!(!broadcast_unnecessary(ReqKind::ReadShared, dirty));
        // Data reads/writes: unnecessary only when nobody caches the line.
        for req in [
            ReqKind::Read,
            ReqKind::ReadExclusive,
            ReqKind::Upgrade,
            ReqKind::Dcbz,
        ] {
            assert!(broadcast_unnecessary(req, nobody), "{req:?}");
            assert!(!broadcast_unnecessary(req, s_only), "{req:?}");
        }
    }

    #[test]
    fn req_kind_classifiers_are_consistent() {
        for req in ALL_REQS {
            assert_eq!(req.wants_modifiable(), req.invalidates_others());
        }
        assert!(ReqKind::Read.needs_data());
        assert!(!ReqKind::Upgrade.needs_data());
        assert!(!ReqKind::Writeback.needs_data());
        assert!(!ReqKind::Dcbz.needs_data());
    }

    #[test]
    fn single_writer_preserved_by_transitions() {
        // If a snooper ends up with a valid copy after an invalidating
        // request, the protocol is broken.
        for s in ALL_STATES {
            for req in ALL_REQS {
                let out = snoop_line(s, req);
                if req.invalidates_others() {
                    assert_eq!(out.next, Invalid);
                }
                // A requester filling M requires every snooper to invalidate.
                if requester_next_state(req, out.response) == Some(Modified) {
                    assert!(!out.next.is_valid() || req == ReqKind::Writeback);
                }
            }
        }
    }
}
