//! Line coherence states.
//!
//! The baseline system of the paper runs write-invalidate **MOESI** at the
//! L2 (the coherence point) and **MSI** at the L1s (Table 3). These enums
//! capture the stable states; the event-driven transition logic lives in
//! [`crate::protocol`] and in the system crate.

use std::fmt;

/// MOESI line state, as used by the L2 caches.
///
/// # Examples
///
/// ```
/// use cgct_cache::MoesiState;
/// assert!(MoesiState::Owned.is_dirty());
/// assert!(MoesiState::Exclusive.can_silently_modify());
/// assert!(!MoesiState::Shared.can_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum MoesiState {
    /// Only valid copy, modified; memory is stale.
    Modified,
    /// Modified and shared: this cache supplies data, memory is stale.
    Owned,
    /// Only cached copy, clean; may transition to `Modified` silently.
    Exclusive,
    /// Clean copy, possibly shared with other caches.
    Shared,
    /// Not present.
    #[default]
    Invalid,
}

impl MoesiState {
    /// Whether the line is present in the cache.
    pub fn is_valid(self) -> bool {
        self != MoesiState::Invalid
    }

    /// Whether this cache holds data newer than memory (M or O).
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }

    /// Whether a store can proceed without any external request.
    pub fn can_write(self) -> bool {
        self == MoesiState::Modified
    }

    /// Whether the state permits a silent upgrade to `Modified`
    /// (no other cache can hold a copy).
    pub fn can_silently_modify(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Exclusive)
    }

    /// Whether this cache must supply data for an external request
    /// (it is the owner: M or O).
    pub fn must_supply(self) -> bool {
        self.is_dirty()
    }

    /// Whether another cache may also hold this line.
    pub fn maybe_shared(self) -> bool {
        matches!(self, MoesiState::Shared | MoesiState::Owned)
    }

    /// One-letter mnemonic (`M`, `O`, `E`, `S`, `I`).
    pub fn letter(self) -> char {
        match self {
            MoesiState::Modified => 'M',
            MoesiState::Owned => 'O',
            MoesiState::Exclusive => 'E',
            MoesiState::Shared => 'S',
            MoesiState::Invalid => 'I',
        }
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// MSI line state, as used by the L1 caches.
///
/// The L1s sit below the inclusive L2: an L1 line in `Modified` implies the
/// L2 copy is (or will become) dirty, and L2 evictions/invalidations recall
/// L1 copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum MsiState {
    /// Writable, dirty with respect to the L2.
    Modified,
    /// Readable, clean with respect to the L2.
    Shared,
    /// Not present.
    #[default]
    Invalid,
}

impl MsiState {
    /// Whether the line is present.
    pub fn is_valid(self) -> bool {
        self != MsiState::Invalid
    }

    /// Whether a store hits without needing L2 involvement.
    pub fn can_write(self) -> bool {
        self == MsiState::Modified
    }

    /// One-letter mnemonic.
    pub fn letter(self) -> char {
        match self {
            MsiState::Modified => 'M',
            MsiState::Shared => 'S',
            MsiState::Invalid => 'I',
        }
    }
}

impl fmt::Display for MsiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl cgct_sim::Snap for MoesiState {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(self.letter().to_string())
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("M") => Ok(MoesiState::Modified),
            Some("O") => Ok(MoesiState::Owned),
            Some("E") => Ok(MoesiState::Exclusive),
            Some("S") => Ok(MoesiState::Shared),
            Some("I") => Ok(MoesiState::Invalid),
            other => Err(format!("unknown MOESI state {other:?}")),
        }
    }
}

impl cgct_sim::Snap for MsiState {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(self.letter().to_string())
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("M") => Ok(MsiState::Modified),
            Some("S") => Ok(MsiState::Shared),
            Some("I") => Ok(MsiState::Invalid),
            other => Err(format!("unknown MSI state {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moesi_classification() {
        use MoesiState::*;
        assert!(Modified.is_valid() && Modified.is_dirty() && Modified.can_write());
        assert!(Owned.is_dirty() && !Owned.can_write() && Owned.maybe_shared());
        assert!(Exclusive.is_valid() && !Exclusive.is_dirty());
        assert!(Exclusive.can_silently_modify() && !Shared.can_silently_modify());
        assert!(Shared.is_valid() && !Shared.is_dirty());
        assert!(!Invalid.is_valid() && !Invalid.is_dirty() && !Invalid.can_write());
    }

    #[test]
    fn moesi_supply_rule() {
        // Only M and O must supply data on an external request; memory is
        // current for E and S lines.
        assert!(MoesiState::Modified.must_supply());
        assert!(MoesiState::Owned.must_supply());
        assert!(!MoesiState::Exclusive.must_supply());
        assert!(!MoesiState::Shared.must_supply());
        assert!(!MoesiState::Invalid.must_supply());
    }

    #[test]
    fn msi_classification() {
        use MsiState::*;
        assert!(Modified.is_valid() && Modified.can_write());
        assert!(Shared.is_valid() && !Shared.can_write());
        assert!(!Invalid.is_valid());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(MoesiState::default(), MoesiState::Invalid);
        assert_eq!(MsiState::default(), MsiState::Invalid);
    }

    #[test]
    fn letters_roundtrip_display() {
        for s in [
            MoesiState::Modified,
            MoesiState::Owned,
            MoesiState::Exclusive,
            MoesiState::Shared,
            MoesiState::Invalid,
        ] {
            assert_eq!(s.to_string(), s.letter().to_string());
        }
        for s in [MsiState::Modified, MsiState::Shared, MsiState::Invalid] {
            assert_eq!(s.to_string(), s.letter().to_string());
        }
    }
}
