//! Miss Status Holding Registers.
//!
//! MSHRs bound the number of outstanding misses per cache and merge
//! secondary misses to a line already being fetched, which is what lets the
//! out-of-order cores overlap multiple memory requests (MLP).

use crate::addr::LineAddr;
use cgct_sim::Cycle;
use cgct_trace::{EventKind, TraceEvent, TraceSink, UNKEYED};

/// Identifier of an allocated MSHR slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(pub usize);

#[derive(Debug, Clone)]
struct Slot<T> {
    line: LineAddr,
    waiters: Vec<T>,
}

/// A file of MSHRs tracking outstanding line misses, each carrying a list
/// of waiter tokens (e.g. load-queue indices) to wake on fill.
///
/// # Examples
///
/// ```
/// use cgct_cache::{LineAddr, MshrFile};
///
/// let mut m: MshrFile<u32> = MshrFile::new(2);
/// let id = m.allocate(LineAddr(5), 100).expect("free slot");
/// assert!(m.find(LineAddr(5)).is_some());
/// m.add_waiter(id, 101);
/// let (line, waiters) = m.complete(id);
/// assert_eq!(line, LineAddr(5));
/// assert_eq!(waiters, vec![100, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<T> {
    slots: Vec<Option<Slot<T>>>,
    /// Occupied-slot count, kept in step with `slots` so the per-issue
    /// full check is O(1) instead of a scan.
    live: usize,
}

impl<T> MshrFile<T> {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        MshrFile {
            slots: (0..capacity).map(|_| None).collect(),
            live: 0,
        }
    }

    /// Total number of registers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of registers in use.
    pub fn in_use(&self) -> usize {
        self.live
    }

    /// Whether every register is occupied.
    pub fn is_full(&self) -> bool {
        self.live == self.slots.len()
    }

    /// Returns the MSHR already tracking `line`, if any (a secondary miss
    /// should merge into it rather than allocate).
    pub fn find(&self, line: LineAddr) -> Option<MshrId> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|slot| slot.line == line))
            .map(MshrId)
    }

    /// Allocates a register for a primary miss to `line` with an initial
    /// waiter. Returns `None` when the file is full (the miss must stall).
    pub fn allocate(&mut self, line: LineAddr, waiter: T) -> Option<MshrId> {
        debug_assert!(self.find(line).is_none(), "line {line} already has an MSHR");
        let idx = self.slots.iter().position(|s| s.is_none())?;
        self.slots[idx] = Some(Slot {
            line,
            waiters: vec![waiter],
        });
        self.live += 1;
        Some(MshrId(idx))
    }

    /// Adds a waiter to an allocated register (secondary miss merge).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn add_waiter(&mut self, id: MshrId, waiter: T) {
        self.slots[id.0]
            .as_mut()
            // cgct-lint: allow(D006) MshrId is a capability handed out by allocate(); an invalid id is a protocol bug and must fail-stop
            .expect("MSHR not allocated")
            .waiters
            .push(waiter);
    }

    /// The line a register is tracking.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn line(&self, id: MshrId) -> LineAddr {
        // cgct-lint: allow(D006) MshrId is a capability handed out by allocate(); an invalid id is a protocol bug and must fail-stop
        self.slots[id.0].as_ref().expect("MSHR not allocated").line
    }

    /// The primary (first) waiter of a register — e.g. the completion time
    /// recorded when the miss was issued, which secondary misses share.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn primary(&self, id: MshrId) -> &T {
        self.slots[id.0]
            .as_ref()
            // cgct-lint: allow(D006) MshrId is a capability handed out by allocate(); an invalid id is a protocol bug and must fail-stop
            .expect("MSHR not allocated")
            .waiters
            .first()
            // cgct-lint: allow(D006) allocate() always records the primary waiter; its absence is a protocol bug and must fail-stop
            .expect("allocate always records a primary waiter")
    }

    /// The primary waiter of register `id`, or `None` if the slot is
    /// free. Unlike [`MshrFile::primary`], this does not panic.
    pub fn get_primary(&self, id: MshrId) -> Option<&T> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .and_then(|slot| slot.waiters.first())
    }

    /// Completes the miss: frees the register and returns the line and all
    /// merged waiters.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn complete(&mut self, id: MshrId) -> (LineAddr, Vec<T>) {
        // cgct-lint: allow(D006) MshrId is a capability handed out by allocate(); freeing an invalid id is a protocol bug and must fail-stop
        let slot = self.slots[id.0].take().expect("MSHR not allocated");
        self.live -= 1;
        (slot.line, slot.waiters)
    }
}

/// Trace-aware variants for MSHR files whose waiter token is the fill
/// completion time (the shape the cores use): identical behaviour to
/// [`MshrFile::find`]/[`MshrFile::allocate`], plus an
/// [`EventKind::MshrMerge`]/[`EventKind::MshrAlloc`] record in `sink`.
///
/// Tracing is observation only — the sink never changes what is
/// allocated or found.
impl MshrFile<Cycle> {
    /// The earliest primary fill time across all allocated registers —
    /// the next cycle at which this file releases a miss. This is the
    /// MSHR-fill completion the machine's event-driven clock jumps to;
    /// `None` when no miss is outstanding.
    pub fn next_fill(&self) -> Option<Cycle> {
        self.slots
            .iter()
            .flatten()
            .filter_map(|slot| slot.waiters.first().copied())
            .min()
    }

    /// [`MshrFile::find`] that, on a merge hit, records the merge and
    /// the remaining wait (`fill - now`) for the secondary access.
    pub fn find_merge_traced(
        &self,
        line: LineAddr,
        node: u8,
        now: Cycle,
        sink: &mut dyn TraceSink,
    ) -> Option<MshrId> {
        let id = self.find(line)?;
        let fill = *self.primary(id);
        sink.record(TraceEvent {
            node,
            seq: UNKEYED,
            cycle: now.0,
            kind: EventKind::MshrMerge {
                line: line.0,
                wait: fill.0.saturating_sub(now.0),
            },
        });
        Some(id)
    }

    /// [`MshrFile::allocate`] that records the allocation.
    pub fn allocate_traced(
        &mut self,
        line: LineAddr,
        fill: Cycle,
        node: u8,
        now: Cycle,
        sink: &mut dyn TraceSink,
    ) -> Option<MshrId> {
        let id = self.allocate(line, fill)?;
        sink.record(TraceEvent {
            node,
            seq: UNKEYED,
            cycle: now.0,
            kind: EventKind::MshrAlloc { line: line.0 },
        });
        Some(id)
    }
}

impl<T: cgct_sim::Snap> cgct_sim::Snap for MshrFile<T> {
    /// Slots serialize positionally (`null` for a free register) and
    /// waiters in order, so first-free allocation, merge lookup, and the
    /// primary-waiter convention all replay identically after restore.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::Array(
            self.slots
                .iter()
                .map(|s| match s {
                    None => Json::Null,
                    Some(slot) => Json::obj([
                        ("line", Json::u64(slot.line.0)),
                        ("waiters", slot.waiters.snap()),
                    ]),
                })
                .collect(),
        )
    }

    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        use cgct_sim::Json;
        let items = elements(v)?;
        if items.is_empty() {
            return Err("MSHR file needs at least one register".to_string());
        }
        let mut m = MshrFile::new(items.len());
        for (i, s) in items.iter().enumerate() {
            if matches!(s, Json::Null) {
                continue;
            }
            let waiters: Vec<T> = unsnap_field(s, "waiters")?;
            if waiters.is_empty() {
                return Err(format!("slot [{i}] has no primary waiter"));
            }
            m.slots[i] = Some(Slot {
                line: LineAddr(field(s, "line")?.as_u64().ok_or("line must be u64")?),
                waiters,
            });
            m.live += 1;
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m: MshrFile<()> = MshrFile::new(3);
        for i in 0..3 {
            assert!(m.allocate(LineAddr(i), ()).is_some());
        }
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr(99), ()), None);
        assert_eq!(m.in_use(), 3);
    }

    #[test]
    fn merge_secondary_misses() {
        let mut m: MshrFile<u8> = MshrFile::new(2);
        let id = m.allocate(LineAddr(7), 1).unwrap();
        assert_eq!(m.find(LineAddr(7)), Some(id));
        m.add_waiter(id, 2);
        m.add_waiter(id, 3);
        let (line, waiters) = m.complete(id);
        assert_eq!(line, LineAddr(7));
        assert_eq!(waiters, vec![1, 2, 3]);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.find(LineAddr(7)), None);
    }

    #[test]
    fn slots_are_reusable_after_completion() {
        let mut m: MshrFile<()> = MshrFile::new(1);
        let id = m.allocate(LineAddr(1), ()).unwrap();
        m.complete(id);
        assert!(m.allocate(LineAddr(2), ()).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn rejects_zero_capacity() {
        let _: MshrFile<()> = MshrFile::new(0);
    }

    #[test]
    fn line_accessor() {
        let mut m: MshrFile<()> = MshrFile::new(2);
        let id = m.allocate(LineAddr(42), ()).unwrap();
        assert_eq!(m.line(id), LineAddr(42));
    }

    #[test]
    fn primary_waiter_is_the_allocation_token() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        let id = m.allocate(LineAddr(1), 77).unwrap();
        m.add_waiter(id, 88);
        assert_eq!(*m.primary(id), 77);
    }

    #[test]
    fn next_fill_is_earliest_primary() {
        let mut m: MshrFile<Cycle> = MshrFile::new(4);
        assert_eq!(m.next_fill(), None);
        let a = m.allocate(LineAddr(1), Cycle(300)).unwrap();
        m.allocate(LineAddr(2), Cycle(200)).unwrap();
        // Secondary waiters never move the fill time.
        m.add_waiter(a, Cycle(100));
        assert_eq!(m.next_fill(), Some(Cycle(200)));
        let b = m.find(LineAddr(2)).unwrap();
        m.complete(b);
        assert_eq!(m.next_fill(), Some(Cycle(300)));
        m.complete(a);
        assert_eq!(m.next_fill(), None);
    }

    #[test]
    fn traced_variants_record_and_match_untraced() {
        let mut m: MshrFile<Cycle> = MshrFile::new(2);
        let mut sink = cgct_trace::TraceBuffer::new(16);
        let id = m
            .allocate_traced(LineAddr(9), Cycle(500), 3, Cycle(100), &mut sink)
            .unwrap();
        assert_eq!(m.find(LineAddr(9)), Some(id));
        let merged = m.find_merge_traced(LineAddr(9), 3, Cycle(140), &mut sink);
        assert_eq!(merged, Some(id));
        assert_eq!(
            m.find_merge_traced(LineAddr(8), 3, Cycle(141), &mut sink),
            None
        );
        let events: Vec<_> = sink.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MshrAlloc { line: 9 });
        assert_eq!(events[0].cycle, 100);
        assert_eq!(events[1].kind, EventKind::MshrMerge { line: 9, wait: 360 });
    }
}
