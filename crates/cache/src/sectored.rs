//! A sectored (sub-blocked) cache — the related-work alternative the
//! paper distinguishes itself from (§2):
//!
//! > "Sectored caches reduce tag overhead by allowing a number of
//! > contiguous lines to share the same tag. However, the partitioning of
//! > a cache into sectors can increase the miss rate significantly for
//! > some applications because of increased internal fragmentation."
//!
//! One tag covers a whole sector (e.g. 512 B = 8 lines) with per-line
//! valid bits; allocating a sector for one line leaves the other slots
//! reserved-but-empty (internal fragmentation), shrinking the effective
//! capacity. CGCT keeps conventional per-line tags and instead tracks
//! *regions beyond the cache*, so it pays none of this miss-rate cost —
//! the comparison the `sectoring` experiment quantifies.

use crate::addr::{Geometry, LineAddr};
use crate::array::SetAssocArray;

/// Per-sector residency: which lines of the sector are valid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sector {
    valid: u32,
}

impl Sector {
    /// Whether line-slot `idx` holds valid data.
    pub fn line_valid(&self, idx: u64) -> bool {
        self.valid & (1 << idx) != 0
    }

    /// Number of valid lines in the sector.
    pub fn occupancy(&self) -> u32 {
        self.valid.count_ones()
    }
}

/// A sectored cache with one tag per sector and per-line valid bits.
///
/// Capacity is expressed in *data* bytes, like a conventional cache: a
/// 1 MB sectored cache with 512 B sectors has 2048 sector frames, each
/// able to hold 8 lines — but only of the *same* sector.
///
/// # Examples
///
/// ```
/// use cgct_cache::{Geometry, LineAddr, SectoredCache};
///
/// let mut c = SectoredCache::new(64 * 1024, 2, Geometry::new(64, 512));
/// assert!(!c.access(LineAddr(0)));      // miss: allocates the sector
/// assert!(c.access(LineAddr(0)));       // hit
/// assert!(!c.access(LineAddr(1)));      // sector hit, line miss
/// assert!(c.access(LineAddr(1)));
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    frames: SetAssocArray<Sector>,
    geometry: Geometry,
    hits: u64,
    misses: u64,
    /// Misses whose sector was present (only the line was absent) —
    /// these would have been ordinary misses in any cache.
    line_misses: u64,
    /// Misses that had to displace a partially-used sector.
    sector_evictions: u64,
}

impl SectoredCache {
    /// Creates a sectored cache of `capacity_bytes` of data, `ways`-way
    /// associative, with `geometry.region_bytes()`-sized sectors.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not divide into a power-of-two number
    /// of sector sets.
    pub fn new(capacity_bytes: u64, ways: usize, geometry: Geometry) -> Self {
        let frames_total = capacity_bytes / geometry.region_bytes();
        let sets = (frames_total as usize) / ways;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sectored cache needs a power-of-two set count, got {sets}"
        );
        SectoredCache {
            frames: SetAssocArray::new(sets, ways),
            geometry,
            hits: 0,
            misses: 0,
            line_misses: 0,
            sector_evictions: 0,
        }
    }

    /// Accesses `line`; returns `true` on a hit. Misses allocate the line
    /// (and its sector frame if absent), evicting the LRU sector.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let sector = self.geometry.region_of_line(line).0;
        let idx = self.geometry.line_index_in_region(line);
        if let Some(s) = self.frames.access(sector) {
            if s.line_valid(idx) {
                self.hits += 1;
                return true;
            }
            s.valid |= 1 << idx;
            self.misses += 1;
            self.line_misses += 1;
            return false;
        }
        self.misses += 1;
        let displaced = self.frames.insert_lru(sector, Sector { valid: 1 << idx });
        if let Some((_, old)) = displaced {
            if old.occupancy() > 0 {
                self.sector_evictions += 1;
            }
        }
        false
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean valid lines per resident sector — the internal-fragmentation
    /// measure (a conventional cache is always "full").
    pub fn mean_sector_occupancy(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.frames.iter().map(|(_, s)| s.occupancy() as u64).sum();
        sum as f64 / self.frames.len() as f64
    }
}

/// A conventional per-line-tag cache with the same interface, for
/// apples-to-apples miss-ratio comparisons.
#[derive(Debug, Clone)]
pub struct ConventionalCache {
    lines: SetAssocArray<()>,
    hits: u64,
    misses: u64,
}

impl ConventionalCache {
    /// Creates a conventional cache of `capacity_bytes`, `ways`-way,
    /// with `geometry.line_bytes()` lines.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    pub fn new(capacity_bytes: u64, ways: usize, geometry: Geometry) -> Self {
        let sets = (capacity_bytes / geometry.line_bytes()) as usize / ways;
        ConventionalCache {
            lines: SetAssocArray::new(sets, ways),
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `line`; returns `true` on a hit.
    pub fn access(&mut self, line: LineAddr) -> bool {
        if self.lines.access(line.0).is_some() {
            self.hits += 1;
            true
        } else {
            self.lines.insert_lru(line.0, ());
            self.misses += 1;
            false
        }
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(64, 512)
    }

    #[test]
    fn sector_reuse_hits_after_line_fill() {
        let mut c = SectoredCache::new(8 * 1024, 2, geom());
        assert!(!c.access(LineAddr(0)));
        assert!(!c.access(LineAddr(3))); // same sector, new line
        assert!(c.access(LineAddr(0)));
        assert!(c.access(LineAddr(3)));
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn fragmentation_raises_miss_ratio_on_sparse_access() {
        // Touch one line per sector over twice the capacity: the sectored
        // cache wastes 7/8 of each frame; the conventional cache keeps
        // 8x as many distinct lines.
        let capacity = 64 * 1024;
        let mut sectored = SectoredCache::new(capacity, 2, geom());
        let mut conventional = ConventionalCache::new(capacity, 2, geom());
        // Working set: one line from each of 256 sectors = 16 KB of data,
        // but 128 KB of sector footprint (> 64 KB cache). The in-sector
        // slot varies so the lines spread over the conventional cache's
        // sets instead of stride-aliasing.
        // line = 8s + s/64 keeps sectors distinct while mapping all 256
        // lines to distinct conventional-cache sets (no stride aliasing).
        let lines: Vec<LineAddr> = (0..256).map(|s| LineAddr(s * 8 + s / 64)).collect();
        for _ in 0..20 {
            for &l in &lines {
                sectored.access(l);
                conventional.access(l);
            }
        }
        assert!(
            conventional.miss_ratio() < 0.06,
            "conventional fits: {:.3}",
            conventional.miss_ratio()
        );
        assert!(
            sectored.miss_ratio() > 0.5,
            "sectored thrashes: {:.3}",
            sectored.miss_ratio()
        );
        assert!(sectored.mean_sector_occupancy() < 2.0);
    }

    #[test]
    fn dense_access_equalizes_the_designs() {
        // Sequentially touching whole sectors: both caches behave alike.
        let capacity = 32 * 1024;
        let mut sectored = SectoredCache::new(capacity, 2, geom());
        let mut conventional = ConventionalCache::new(capacity, 2, geom());
        for _ in 0..10 {
            for l in 0..256u64 {
                sectored.access(LineAddr(l));
                conventional.access(LineAddr(l));
            }
        }
        let delta = (sectored.miss_ratio() - conventional.miss_ratio()).abs();
        assert!(delta < 0.02, "dense access should match: {delta:.3}");
        assert!(sectored.mean_sector_occupancy() > 6.0);
    }

    #[test]
    fn sector_evictions_counted() {
        let mut c = SectoredCache::new(1024, 1, geom()); // 2 frames
        c.access(LineAddr(0));
        c.access(LineAddr(8));
        c.access(LineAddr(16)); // evicts a used frame
        assert!(c.sector_evictions >= 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_geometry() {
        let _ = SectoredCache::new(512 * 3, 1, geom());
    }
}
