//! Caches and line-grain coherence for the CGCT reproduction.
//!
//! This crate provides the physical-address model, set-associative cache
//! arrays with pluggable victim selection, the MOESI (L2) and MSI (L1)
//! line-state machines of the paper's baseline system, and MSHRs.
//!
//! The *region*-grain protocol — the paper's contribution — lives in the
//! `cgct` core crate and is layered on top of these structures.
//!
//! # Examples
//!
//! ```
//! use cgct_cache::{Addr, Geometry, MoesiState};
//!
//! let geom = Geometry::new(64, 512);
//! let line = geom.line_of(Addr(0x1234));
//! assert_eq!(geom.region_of_line(line), geom.region_of(Addr(0x1234)));
//! assert!(MoesiState::Modified.is_dirty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod addr;
pub mod array;
pub mod config;
pub mod mshr;
pub mod protocol;
pub mod sectored;
pub mod state;

pub use addr::{Addr, Geometry, LineAddr, RegionAddr};
pub use array::{LookupOutcome, SetAssocArray};
pub use config::{CacheConfig, HierarchyConfig};
pub use mshr::{MshrFile, MshrId};
pub use protocol::{
    broadcast_unnecessary, requester_next_state, snoop_line, LineSnoopResponse, ReqKind,
    SnoopAction, SnoopOutcome,
};
pub use sectored::{ConventionalCache, SectoredCache};
pub use state::{MoesiState, MsiState};
