//! Physical addresses, cache lines, and coherence regions.
//!
//! The paper's system uses 64-byte cache lines and power-of-two *regions*
//! of 256 B, 512 B, or 1 KB — each region is an aligned group of 4, 8, or
//! 16 lines. [`Geometry`] captures one (line size, region size) choice and
//! performs all address arithmetic.

use std::fmt;

/// A physical byte address.
///
/// # Examples
///
/// ```
/// use cgct_cache::Addr;
/// let a = Addr(0x1000);
/// assert_eq!(a.offset(0x40), Addr(0x1040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address `bytes` past this one, wrapping on overflow
    /// (consistent with [`LineAddr::offset`]).
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (`address >> line_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line `n` lines after this one.
    pub fn offset(self, n: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add_signed(n))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A region number (`address >> region_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionAddr(pub u64);

impl fmt::Display for RegionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

macro_rules! impl_snap_addr {
    ($($t:ident),*) => {$(
        impl cgct_sim::Snap for $t {
            fn snap(&self) -> cgct_sim::Json {
                cgct_sim::Json::u64(self.0)
            }
            fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
                Ok($t(v.as_u64().ok_or(concat!("expected ", stringify!($t)))?))
            }
        }
    )*};
}
impl_snap_addr!(Addr, LineAddr, RegionAddr);

/// Line/region address arithmetic for one (line size, region size) choice.
///
/// Both sizes must be powers of two, and the region must be at least one
/// line (the paper uses 4–16 lines per region).
///
/// # Examples
///
/// ```
/// use cgct_cache::{Addr, Geometry};
/// let g = Geometry::new(64, 512);
/// assert_eq!(g.lines_per_region(), 8);
/// let line = g.line_of(Addr(0x1fc0));
/// let region = g.region_of_line(line);
/// assert!(g.lines_in_region(region).any(|l| l == line));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    line_bits: u32,
    region_bits: u32,
}

impl Geometry {
    /// Creates a geometry with `line_bytes`-byte lines grouped into
    /// `region_bytes`-byte regions.
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two, or if the region is
    /// smaller than a line.
    pub fn new(line_bytes: u64, region_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        assert!(
            region_bytes.is_power_of_two(),
            "region size must be a power of two, got {region_bytes}"
        );
        assert!(
            region_bytes >= line_bytes,
            "region ({region_bytes} B) must be at least one line ({line_bytes} B)"
        );
        Geometry {
            line_bits: line_bytes.trailing_zeros(),
            region_bits: region_bytes.trailing_zeros(),
        }
    }

    /// The paper's default: 64-byte lines, 512-byte regions.
    pub fn paper_default() -> Self {
        Geometry::new(64, 512)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_bits
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        1 << self.region_bits
    }

    /// Number of cache lines per region.
    pub fn lines_per_region(&self) -> u64 {
        1 << (self.region_bits - self.line_bits)
    }

    /// The line containing byte address `addr`.
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr(addr.0 >> self.line_bits)
    }

    /// The region containing byte address `addr`.
    pub fn region_of(&self, addr: Addr) -> RegionAddr {
        RegionAddr(addr.0 >> self.region_bits)
    }

    /// The region containing line `line`.
    pub fn region_of_line(&self, line: LineAddr) -> RegionAddr {
        RegionAddr(line.0 >> (self.region_bits - self.line_bits))
    }

    /// The first byte address of line `line`.
    pub fn line_base(&self, line: LineAddr) -> Addr {
        Addr(line.0 << self.line_bits)
    }

    /// The first byte address of region `region`.
    pub fn region_base(&self, region: RegionAddr) -> Addr {
        Addr(region.0 << self.region_bits)
    }

    /// Iterates over every line of `region`, lowest first.
    pub fn lines_in_region(&self, region: RegionAddr) -> impl Iterator<Item = LineAddr> {
        let first = region.0 << (self.region_bits - self.line_bits);
        let n = self.lines_per_region();
        (first..first + n).map(LineAddr)
    }

    /// Index of `line` within its region, in `0..lines_per_region()`.
    pub fn line_index_in_region(&self, line: LineAddr) -> u64 {
        line.0 & (self.lines_per_region() - 1)
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        for (region, lines) in [(256, 4), (512, 8), (1024, 16)] {
            let g = Geometry::new(64, region);
            assert_eq!(g.lines_per_region(), lines);
            assert_eq!(g.line_bytes(), 64);
            assert_eq!(g.region_bytes(), region);
        }
    }

    #[test]
    fn line_and_region_mapping() {
        let g = Geometry::new(64, 512);
        assert_eq!(g.line_of(Addr(0)), LineAddr(0));
        assert_eq!(g.line_of(Addr(63)), LineAddr(0));
        assert_eq!(g.line_of(Addr(64)), LineAddr(1));
        assert_eq!(g.region_of(Addr(511)), RegionAddr(0));
        assert_eq!(g.region_of(Addr(512)), RegionAddr(1));
        assert_eq!(g.region_of_line(LineAddr(7)), RegionAddr(0));
        assert_eq!(g.region_of_line(LineAddr(8)), RegionAddr(1));
    }

    #[test]
    fn bases_invert_mappings() {
        let g = Geometry::new(64, 1024);
        let line = LineAddr(12345);
        assert_eq!(g.line_of(g.line_base(line)), line);
        let region = RegionAddr(777);
        assert_eq!(g.region_of(g.region_base(region)), region);
    }

    #[test]
    fn lines_in_region_enumerates_all() {
        let g = Geometry::new(64, 256);
        let lines: Vec<LineAddr> = g.lines_in_region(RegionAddr(3)).collect();
        assert_eq!(
            lines,
            vec![LineAddr(12), LineAddr(13), LineAddr(14), LineAddr(15)]
        );
        for l in &lines {
            assert_eq!(g.region_of_line(*l), RegionAddr(3));
        }
    }

    #[test]
    fn line_index_in_region() {
        let g = Geometry::new(64, 512);
        assert_eq!(g.line_index_in_region(LineAddr(8)), 0);
        assert_eq!(g.line_index_in_region(LineAddr(15)), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_region() {
        let _ = Geometry::new(64, 500);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_region_smaller_than_line() {
        let _ = Geometry::new(64, 32);
    }

    #[test]
    fn line_offset_moves_both_ways() {
        let l = LineAddr(10);
        assert_eq!(l.offset(3), LineAddr(13));
        assert_eq!(l.offset(-3), LineAddr(7));
    }

    #[test]
    fn addr_offset_wraps_on_overflow() {
        assert_eq!(Addr(5).offset(3), Addr(8));
        assert_eq!(Addr(u64::MAX).offset(1), Addr(0));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(0xff).to_string(), "0xff");
        assert_eq!(LineAddr(0x10).to_string(), "0x10");
        assert_eq!(RegionAddr(0x2).to_string(), "0x2");
    }
}
