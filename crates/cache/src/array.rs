//! A generic set-associative array with true-LRU stamps and pluggable
//! victim selection.
//!
//! Both the caches and the Region Coherence Array are instances of this
//! structure: the RCA is "organized like the L2 cache tags" (§4), differing
//! only in its entry payload and in its replacement policy (which favors
//! regions with no cached lines, §3.2).

/// A candidate line for eviction, handed to victim-selection callbacks.
#[derive(Debug)]
pub struct VictimCandidate<'a, E> {
    /// The key (line or region number) stored in this way.
    pub key: u64,
    /// LRU stamp: smaller means less recently used.
    pub last_use: u64,
    /// The stored entry.
    pub entry: &'a E,
}

/// Result of [`SetAssocArray::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The key is present.
    Hit,
    /// The key is absent but its set has a free way.
    MissFree,
    /// The key is absent and its set is full (insertion must evict).
    MissFull,
}

#[derive(Debug, Clone)]
struct Way<E> {
    tag: u64,
    last_use: u64,
    entry: Option<E>,
}

/// A set-associative array mapping `u64` keys (line or region numbers) to
/// entries of type `E`.
///
/// The key is split into a set index (low bits) and a tag (high bits);
/// the number of sets must be a power of two.
///
/// # Examples
///
/// ```
/// use cgct_cache::SetAssocArray;
///
/// let mut a: SetAssocArray<&str> = SetAssocArray::new(4, 2);
/// assert!(a.insert_lru(0, "zero").is_none());
/// assert!(a.insert_lru(4, "four").is_none()); // same set as key 0
/// // Set is now full; inserting a third conflicting key evicts the LRU (0).
/// let evicted = a.insert_lru(8, "eight");
/// assert_eq!(evicted, Some((0, "zero")));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<E> {
    sets: usize,
    ways: usize,
    /// `sets - 1`, precomputed: the set index is `key & set_mask`.
    set_mask: usize,
    /// `log2(sets)`, precomputed: the tag is `key >> set_shift`.
    set_shift: u32,
    storage: Vec<Way<E>>,
    clock: u64,
    len: usize,
}

impl<E> SetAssocArray<E> {
    /// Creates an empty array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be at least 1");
        let mut storage = Vec::with_capacity(sets * ways);
        for _ in 0..sets * ways {
            storage.push(Way {
                tag: 0,
                last_use: 0,
                entry: None,
            });
        }
        SetAssocArray {
            sets,
            ways,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            storage,
            clock: 0,
            len: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        (key as usize) & self.set_mask
    }

    #[inline]
    fn tag(&self, key: u64) -> u64 {
        key >> self.set_shift
    }

    fn key_from(&self, tag: u64, set: usize) -> u64 {
        (tag << self.set_shift) | set as u64
    }

    #[inline]
    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let s = self.set_index(key);
        s * self.ways..(s + 1) * self.ways
    }

    /// The hot path of every cache and RCA probe. Compares the tag
    /// first: on the common miss path each way is rejected by one
    /// integer compare, and the `Option` discriminant is only consulted
    /// on a tag match (an empty way keeps its stale tag, so the validity
    /// check cannot be dropped — a reinserted key may legitimately match
    /// it).
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let tag = self.tag(key);
        let start = self.set_index(key) * self.ways;
        let ways = &self.storage[start..start + self.ways];
        for (i, way) in ways.iter().enumerate() {
            if way.tag == tag && way.entry.is_some() {
                return Some(start + i);
            }
        }
        None
    }

    /// Classifies what an insertion of `key` would encounter.
    pub fn lookup(&self, key: u64) -> LookupOutcome {
        if self.find(key).is_some() {
            LookupOutcome::Hit
        } else if self.set_range(key).any(|i| self.storage[i].entry.is_none()) {
            LookupOutcome::MissFree
        } else {
            LookupOutcome::MissFull
        }
    }

    /// Returns the entry for `key` without updating recency.
    pub fn get(&self, key: u64) -> Option<&E> {
        self.find(key).and_then(|i| self.storage[i].entry.as_ref())
    }

    /// Returns the entry for `key` mutably without updating recency.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut E> {
        self.find(key).and_then(|i| self.storage[i].entry.as_mut())
    }

    /// Returns the entry for `key`, marking it most recently used.
    pub fn access(&mut self, key: u64) -> Option<&mut E> {
        let i = self.find(key)?;
        self.clock += 1;
        self.storage[i].last_use = self.clock;
        self.storage[i].entry.as_mut()
    }

    /// Marks `key` most recently used, if present.
    pub fn touch(&mut self, key: u64) {
        let _ = self.access(key);
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `entry` under `key`, evicting the least recently used entry
    /// of the set if it is full. Returns the evicted `(key, entry)` pair.
    ///
    /// If `key` is already present, its entry is replaced and returned as
    /// the "evicted" pair.
    pub fn insert_lru(&mut self, key: u64, entry: E) -> Option<(u64, E)> {
        self.insert_with_victim(key, entry, |cands| {
            cands
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_use)
                .map(|(i, _)| i)
                // cgct-lint: allow(D006) replacement invariant: a non-empty set always yields a victim; fail-stop beats silently corrupting the cache
                .expect("victim set is never empty")
        })
    }

    /// Inserts `entry` under `key`; when the set is full, `choose` picks the
    /// victim from the set's current occupants. Returns the displaced
    /// `(key, entry)` pair, if any.
    ///
    /// # Panics
    ///
    /// Panics if `choose` returns an out-of-range index.
    pub fn insert_with_victim(
        &mut self,
        key: u64,
        entry: E,
        choose: impl FnOnce(&[VictimCandidate<'_, E>]) -> usize,
    ) -> Option<(u64, E)> {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag(key);
        // Replace in place on hit.
        if let Some(i) = self.find(key) {
            let old = self.storage[i].entry.replace(entry);
            self.storage[i].last_use = clock;
            return old.map(|e| (key, e));
        }
        // Free way?
        if let Some(i) = self
            .set_range(key)
            .find(|&i| self.storage[i].entry.is_none())
        {
            self.storage[i] = Way {
                tag,
                last_use: clock,
                entry: Some(entry),
            };
            self.len += 1;
            return None;
        }
        // Full set: ask the policy for a victim.
        let set = self.set_index(key);
        let range = self.set_range(key);
        let candidates: Vec<VictimCandidate<'_, E>> = range
            .clone()
            .map(|i| VictimCandidate {
                key: self.key_from(self.storage[i].tag, set),
                last_use: self.storage[i].last_use,
                // cgct-lint: allow(D006) iteration is over a full set: every slot's entry is Some by the loop guard
                entry: self.storage[i].entry.as_ref().expect("set is full"),
            })
            .collect();
        let victim_way = choose(&candidates);
        assert!(victim_way < self.ways, "victim index out of range");
        drop(candidates);
        let i = range.start + victim_way;
        let old_key = self.key_from(self.storage[i].tag, set);
        let old = self.storage[i].entry.take();
        self.storage[i] = Way {
            tag,
            last_use: clock,
            entry: Some(entry),
        };
        old.map(|e| (old_key, e))
    }

    /// Removes and returns the entry for `key`.
    pub fn remove(&mut self, key: u64) -> Option<E> {
        let i = self.find(key)?;
        self.len -= 1;
        self.storage[i].entry.take()
    }

    /// Iterates over all `(key, &entry)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &E)> + '_ {
        let sets = self.sets;
        let ways = self.ways;
        (0..sets * ways).filter_map(move |i| {
            let way = &self.storage[i];
            way.entry
                .as_ref()
                .map(|e| (self.key_from(way.tag, i / ways), e))
        })
    }

    /// Iterates mutably over all `(key, &mut entry)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut E)> + '_ {
        let sets_bits = self.sets.trailing_zeros();
        let ways = self.ways;
        self.storage
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, way)| {
                let set = i / ways;
                way.entry
                    .as_mut()
                    .map(|e| (((way.tag) << sets_bits) | set as u64, e))
            })
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        for way in &mut self.storage {
            way.entry = None;
        }
        self.len = 0;
    }

    /// Number of valid entries in the set that `key` maps to.
    pub fn set_occupancy(&self, key: u64) -> usize {
        self.set_range(key)
            .filter(|&i| self.storage[i].entry.is_some())
            .count()
    }
}

impl<E: cgct_sim::Snap> cgct_sim::Snap for SetAssocArray<E> {
    /// Ways serialize positionally (`null` for a free way), so free-way
    /// selection and victim order replay identically after restore. Free
    /// ways deliberately drop their stale tag/LRU stamp — both are dead
    /// state (`find` gates on occupancy, victims only come from full
    /// sets) — which also makes snapshotting idempotent.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("sets", Json::u64(self.sets as u64)),
            ("ways", Json::u64(self.ways as u64)),
            ("clock", Json::u64(self.clock)),
            (
                "storage",
                Json::Array(
                    self.storage
                        .iter()
                        .map(|w| match &w.entry {
                            None => Json::Null,
                            Some(e) => Json::obj([
                                ("t", Json::u64(w.tag)),
                                ("u", Json::u64(w.last_use)),
                                ("e", e.snap()),
                            ]),
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        use cgct_sim::Json;
        let sets: usize = unsnap_field(v, "sets")?;
        let ways: usize = unsnap_field(v, "ways")?;
        if !sets.is_power_of_two() || ways == 0 {
            return Err(format!("bad geometry {sets}x{ways}"));
        }
        let mut a = SetAssocArray::new(sets, ways);
        a.clock = unsnap_field(v, "clock")?;
        let storage = elements(field(v, "storage")?)?;
        if storage.len() != sets * ways {
            return Err(format!(
                "storage has {} ways, expected {}",
                storage.len(),
                sets * ways
            ));
        }
        for (i, w) in storage.iter().enumerate() {
            if matches!(w, Json::Null) {
                continue;
            }
            a.storage[i] = Way {
                tag: unsnap_field(w, "t")?,
                last_use: unsnap_field(w, "u")?,
                entry: Some(
                    E::unsnap(field(w, "e")?).map_err(|e| format!("way [{i}] entry: {e}"))?,
                ),
            };
            a.len += 1;
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(8, 2);
        assert!(a.insert_lru(100, 1).is_none());
        assert_eq!(a.get(100), Some(&1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(100), Some(1));
        assert!(a.is_empty());
        assert_eq!(a.remove(100), None);
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetAssocArray<char> = SetAssocArray::new(1, 3);
        a.insert_lru(0, 'a');
        a.insert_lru(1, 'b');
        a.insert_lru(2, 'c');
        a.touch(0); // make 'a' MRU; LRU is now 'b'
        assert_eq!(a.insert_lru(3, 'd'), Some((1, 'b')));
        assert!(a.contains(0) && a.contains(2) && a.contains(3));
    }

    #[test]
    fn replace_on_hit_returns_old() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 2);
        a.insert_lru(5, 10);
        assert_eq!(a.insert_lru(5, 20), Some((5, 10)));
        assert_eq!(a.get(5), Some(&20));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn keys_reconstructed_correctly() {
        let mut a: SetAssocArray<()> = SetAssocArray::new(16, 4);
        let keys = [0u64, 15, 16, 31, 1 << 20, (1 << 20) + 5];
        for &k in &keys {
            a.insert_lru(k, ());
        }
        let mut seen: Vec<u64> = a.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn lookup_classifies() {
        let mut a: SetAssocArray<u8> = SetAssocArray::new(1, 2);
        assert_eq!(a.lookup(7), LookupOutcome::MissFree);
        a.insert_lru(7, 0);
        assert_eq!(a.lookup(7), LookupOutcome::Hit);
        a.insert_lru(9, 0);
        assert_eq!(a.lookup(11), LookupOutcome::MissFull);
    }

    #[test]
    fn custom_victim_policy_sees_all_candidates() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(1, 4);
        for k in 0..4u64 {
            a.insert_lru(k, k as u32 * 10);
        }
        // Evict the entry whose payload is largest.
        let evicted = a.insert_with_victim(99, 0, |cands| {
            assert_eq!(cands.len(), 4);
            cands
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| *c.entry)
                .map(|(i, _)| i)
                .unwrap()
        });
        assert_eq!(evicted, Some((3, 30)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut a: SetAssocArray<u8> = SetAssocArray::new(4, 1);
        for k in 0..4u64 {
            assert!(a.insert_lru(k, k as u8).is_none());
        }
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn access_updates_recency_but_get_does_not() {
        let mut a: SetAssocArray<u8> = SetAssocArray::new(1, 2);
        a.insert_lru(0, 0);
        a.insert_lru(1, 1);
        let _ = a.get(0); // must NOT refresh key 0
        assert_eq!(a.insert_lru(2, 2), Some((0, 0)));

        let mut b: SetAssocArray<u8> = SetAssocArray::new(1, 2);
        b.insert_lru(0, 0);
        b.insert_lru(1, 1);
        let _ = b.access(0); // refreshes key 0
        assert_eq!(b.insert_lru(2, 2), Some((1, 1)));
    }

    #[test]
    fn set_occupancy_counts() {
        let mut a: SetAssocArray<u8> = SetAssocArray::new(2, 3);
        a.insert_lru(0, 0);
        a.insert_lru(2, 0);
        a.insert_lru(1, 0);
        assert_eq!(a.set_occupancy(0), 2);
        assert_eq!(a.set_occupancy(1), 1);
    }

    #[test]
    fn clear_resets() {
        let mut a: SetAssocArray<u8> = SetAssocArray::new(2, 2);
        a.insert_lru(0, 0);
        a.insert_lru(1, 1);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.get(0), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _: SetAssocArray<u8> = SetAssocArray::new(3, 2);
    }

    #[test]
    fn lru_tie_breaks_on_lowest_way() {
        // The public API hands every entry a unique clock stamp, but the
        // victim policy must still be deterministic if stamps ever tie
        // (`min_by_key` keeps the *first* minimum): replacement order is
        // simulation-visible state, so a refactor that scanned ways
        // backwards would silently change results only in tie cases.
        let mut a: SetAssocArray<char> = SetAssocArray::new(1, 3);
        a.insert_lru(0, 'a');
        a.insert_lru(1, 'b');
        a.insert_lru(2, 'c');
        for way in &mut a.storage {
            way.last_use = 7;
        }
        assert_eq!(a.insert_lru(3, 'd'), Some((0, 'a')));

        // A strictly smaller stamp still beats position.
        let mut b: SetAssocArray<char> = SetAssocArray::new(1, 3);
        b.insert_lru(0, 'a');
        b.insert_lru(1, 'b');
        b.insert_lru(2, 'c');
        b.storage[0].last_use = 7;
        b.storage[1].last_use = 7;
        b.storage[2].last_use = 3;
        assert_eq!(b.insert_lru(3, 'd'), Some((2, 'c')));
    }

    #[test]
    fn iter_mut_allows_in_place_updates() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 2);
        for k in 0..8u64 {
            a.insert_lru(k, 0);
        }
        for (k, v) in a.iter_mut() {
            *v = k as u32 + 1;
        }
        for k in 0..8u64 {
            assert_eq!(a.get(k), Some(&(k as u32 + 1)));
        }
    }
}
