//! Cache configuration, with Table 3 defaults.

/// Size/organization of one cache (Table 3).
///
/// # Examples
///
/// ```
/// use cgct_cache::CacheConfig;
/// let l2 = CacheConfig::paper_l2();
/// assert_eq!(l2.sets(), 8192); // 1 MB, 2-way, 64 B lines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in CPU cycles.
    pub latency: u64,
    /// Number of MSHRs.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Paper L1 instruction cache: 32 KB, 4-way, 64 B lines, 1 cycle.
    pub fn paper_l1i() -> Self {
        CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        }
    }

    /// Paper L1 data cache: 64 KB, 4-way, 64 B lines, 1 cycle, write-back.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 1,
            mshrs: 8,
        }
    }

    /// Paper L2 cache: 1 MB, 2-way, 64 B lines, 12 cycles, write-back.
    pub fn paper_l2() -> Self {
        CacheConfig {
            capacity_bytes: 1024 * 1024,
            ways: 2,
            line_bytes: 64,
            latency: 12,
            mshrs: 16,
        }
    }

    /// Number of sets implied by capacity, ways, and line size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide evenly or the set count
    /// is not a power of two.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        let sets = (lines as usize) / self.ways;
        assert_eq!(
            sets * self.ways,
            lines as usize,
            "capacity must divide evenly into sets"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Total number of lines this cache can hold.
    pub fn total_lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }
}

/// Per-processor cache hierarchy configuration (L1I + L1D + unified L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 (the coherence point).
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's per-processor hierarchy (Table 3).
    pub fn paper_default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1i(),
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_matches_rca_organization() {
        // §4: "the RCA has the same organization as the L2-cache tags,
        // with 8K sets and 2-way associative (16K entries)".
        let l2 = CacheConfig::paper_l2();
        assert_eq!(l2.sets(), 8192);
        assert_eq!(l2.total_lines(), 16384);
    }

    #[test]
    fn paper_l1_geometries() {
        assert_eq!(CacheConfig::paper_l1i().sets(), 128);
        assert_eq!(CacheConfig::paper_l1d().sets(), 256);
        assert_eq!(CacheConfig::paper_l1i().latency, 1);
        assert_eq!(CacheConfig::paper_l1d().latency, 1);
        assert_eq!(CacheConfig::paper_l2().latency, 12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sets_rejects_non_power_of_two() {
        let cfg = CacheConfig {
            capacity_bytes: 3 * 64 * 2,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            mshrs: 1,
        };
        let _ = cfg.sets();
    }

    #[test]
    fn hierarchy_default_is_paper() {
        let h = HierarchyConfig::default();
        assert_eq!(h.l2, CacheConfig::paper_l2());
    }
}
