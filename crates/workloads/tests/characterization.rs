//! Statistical characterization of the nine benchmark generators: the
//! properties that calibrate Figure 2 must hold in the instruction
//! streams themselves, independent of the simulator.

#![allow(clippy::disallowed_types)]
// ^ D002 mirror (clippy.toml): test code is exempt by policy

use cgct_cpu::{UopKind, UopSource};
use cgct_workloads::{all_benchmarks, by_name, AddressMap, Segment, WorkloadThread};
use std::collections::HashSet;

const SAMPLE: usize = 120_000;

/// Buckets a physical address into its segment for core `c` of 4.
fn segment_of(addr: u64) -> &'static str {
    // Segment bases from the layout (spread offsets are < 2 MB).
    match addr >> 36 {
        0x0 => "code",
        0x1 => "private",
        0x2 => "shared_ro",
        0x3 => "shared_rw",
        0x4 => "migratory",
        0x5 => "pagepool",
        0x6 => "kernel",
        0x7 => "interleaved",
        _ => "other",
    }
}

fn segment_fractions(name: &str, core: usize) -> std::collections::HashMap<&'static str, f64> {
    let spec = by_name(name).unwrap();
    let mut t = WorkloadThread::new(spec, core, 4, 11);
    let mut counts: std::collections::HashMap<&'static str, u64> = Default::default();
    let mut total = 0u64;
    for _ in 0..SAMPLE {
        if let Some(a) = t.next_uop().kind.mem_addr() {
            *counts.entry(segment_of(a.0)).or_default() += 1;
            total += 1;
        }
    }
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / total as f64))
        .collect()
}

#[test]
fn specint_rate_touches_no_user_shared_data() {
    let f = segment_fractions("specint2000rate", 0);
    assert_eq!(f.get("shared_rw").copied().unwrap_or(0.0), 0.0);
    assert_eq!(f.get("shared_ro").copied().unwrap_or(0.0), 0.0);
    assert_eq!(f.get("migratory").copied().unwrap_or(0.0), 0.0);
    assert!(f.get("private").copied().unwrap_or(0.0) > 0.85);
}

#[test]
fn barnes_is_dominated_by_shared_readwrite_data() {
    let f = segment_fractions("barnes", 1);
    assert!(
        f.get("shared_rw").copied().unwrap_or(0.0) > 0.35,
        "barnes shared_rw {:?}",
        f.get("shared_rw")
    );
}

#[test]
fn raytrace_reads_a_shared_scene_without_writing_it() {
    let spec = by_name("raytrace").unwrap();
    let mut t = WorkloadThread::new(spec, 0, 4, 3);
    let ro_base = AddressMap::new(0, 4, false).base(Segment::SharedReadOnly).0;
    let ro_end = ro_base + 0x1000_0000;
    for _ in 0..SAMPLE {
        if let UopKind::Store { addr } = t.next_uop().kind {
            assert!(
                !(ro_base..ro_end).contains(&addr.0),
                "store into the read-only scene at {addr}"
            );
        }
    }
}

#[test]
fn commercial_workloads_zero_pages_scientific_do_not() {
    for spec in all_benchmarks() {
        let rate: f32 = spec
            .phases
            .iter()
            .map(|p| p.dcbz_pages_per_kilo_instr)
            .fold(0.0, f32::max);
        let scientific = matches!(spec.name, "ocean" | "raytrace" | "barnes");
        if scientific {
            assert_eq!(rate, 0.0, "{} should not dcbz", spec.name);
        } else {
            assert!(rate > 0.0, "{} should dcbz", spec.name);
        }
        // For benchmarks with a non-negligible rate, the stream itself
        // must contain whole-page dcbz bursts (low-rate ones like TPC-H
        // are too sparse to assert on a short sample).
        if rate >= 0.05 {
            let mut t = WorkloadThread::new(spec.clone(), 0, 4, 7);
            let dcbz = (0..SAMPLE)
                .filter(|_| matches!(t.next_uop().kind, UopKind::Dcbz { .. }))
                .count();
            assert!(dcbz >= 64, "{}: only {dcbz} dcbz uops", spec.name);
        }
    }
}

#[test]
fn multiprogrammed_code_is_per_core_threaded_code_is_shared() {
    let pcs = |name: &str, core: usize| -> HashSet<u64> {
        let spec = by_name(name).unwrap();
        let mut t = WorkloadThread::new(spec, core, 4, 9);
        (0..20_000).map(|_| t.next_uop().pc & !0xFFF).collect()
    };
    // SPECint rate: disjoint code pages per core.
    let a = pcs("specint2000rate", 0);
    let b = pcs("specint2000rate", 1);
    assert!(a.is_disjoint(&b), "rate binaries must not share code pages");
    // Ocean: same binary on every core.
    let a = pcs("ocean", 0);
    let b = pcs("ocean", 1);
    assert!(!a.is_disjoint(&b), "threaded code must share pages");
}

#[test]
fn tpch_alternates_private_scan_and_shared_merge() {
    let spec = by_name("tpc-h").unwrap();
    let mut t = WorkloadThread::new(spec, 0, 4, 13);
    // Sample segment mix over windows; both a private-dominated and a
    // shared-heavy window must appear.
    let mut windows = Vec::new();
    for _ in 0..12 {
        let mut shared = 0u64;
        let mut total = 0u64;
        for _ in 0..10_000 {
            if let Some(a) = t.next_uop().kind.mem_addr() {
                total += 1;
                if matches!(segment_of(a.0), "shared_rw" | "migratory") {
                    shared += 1;
                }
            }
        }
        windows.push(shared as f64 / total.max(1) as f64);
    }
    let lo = windows.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = windows.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        hi > lo + 0.2,
        "phases should differ in sharing: lo {lo:.2} hi {hi:.2} ({windows:?})"
    );
}

#[test]
fn every_benchmark_reuses_regions_spatially() {
    // CGCT's premise: consecutive memory accesses frequently fall in the
    // same 512 B region. All nine generators must show this.
    for spec in all_benchmarks() {
        let name = spec.name;
        let mut t = WorkloadThread::new(spec, 0, 4, 21);
        let mut prev = None;
        let mut same = 0u64;
        let mut total = 0u64;
        for _ in 0..SAMPLE {
            if let Some(a) = t.next_uop().kind.mem_addr() {
                let region = a.0 >> 9;
                if prev == Some(region) {
                    same += 1;
                }
                prev = Some(region);
                total += 1;
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.25, "{name}: region locality {frac:.2}");
    }
}

#[test]
fn interleaved_heap_keeps_cores_logically_disjoint() {
    // Commercial workloads using the interleaved heap must never have two
    // cores touch the same LINE, even though their data interleaves at
    // 512-byte granularity.
    for name in ["specweb99", "specjbb2000", "tpc-w", "tpc-b"] {
        let lines = |core: usize| -> HashSet<u64> {
            let spec = by_name(name).unwrap();
            let mut t = WorkloadThread::new(spec, core, 4, 17);
            (0..SAMPLE)
                .filter_map(|_| t.next_uop().kind.mem_addr())
                .filter(|a| segment_of(a.0) == "interleaved")
                .map(|a| a.0 >> 6)
                .collect()
        };
        let a = lines(0);
        let b = lines(1);
        assert!(!a.is_empty(), "{name} uses the interleaved heap");
        assert!(
            a.is_disjoint(&b),
            "{name}: cores collided on interleaved lines"
        );
    }
}
