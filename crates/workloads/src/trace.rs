//! Trace-driven workloads: record any uop stream to a portable JSON-lines
//! format and play it back later.
//!
//! The synthetic generators approximate the paper's checkpoint-driven
//! methodology; this module gives downstream users the other half — feed
//! the simulator a *real* dynamic instruction trace (e.g. converted from
//! a binary-instrumentation tool) instead.
//!
//! # Examples
//!
//! ```
//! use cgct_workloads::{by_name, trace, WorkloadThread};
//! use cgct_cpu::UopSource;
//!
//! // Record 1000 instructions of a synthetic benchmark...
//! let mut src = WorkloadThread::new(by_name("barnes").unwrap(), 0, 4, 1);
//! let uops = trace::record(&mut src, 1000);
//!
//! // ...serialize and replay them.
//! let text = trace::to_jsonl(&uops).unwrap();
//! let mut replay = trace::TraceThread::from_jsonl(&text).unwrap();
//! assert_eq!(replay.next_uop(), uops[0]);
//! ```

use cgct_cpu::{Uop, UopSource};
use cgct_sim::Json;
use std::fmt;

/// Errors from parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The underlying JSON or field error, rendered.
        reason: String,
    },
    /// The trace contained no instructions.
    Empty,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
            ParseTraceError::Empty => write!(f, "trace contains no instructions"),
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Pulls `n` instructions from any source into a buffer.
pub fn record(src: &mut dyn UopSource, n: usize) -> Vec<Uop> {
    (0..n).map(|_| src.next_uop()).collect()
}

/// Serializes a trace as JSON lines (one uop per line).
///
/// # Errors
///
/// Kept as a `Result` for interface stability; serialization itself is
/// infallible with the in-tree emitter.
pub fn to_jsonl(uops: &[Uop]) -> Result<String, ParseTraceError> {
    let mut out = String::new();
    for u in uops {
        out.push_str(&u.to_json().dump());
        out.push('\n');
    }
    Ok(out)
}

/// Parses a JSON-lines trace (blank lines and `#` comments are skipped).
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] with the offending line number,
/// or [`ParseTraceError::Empty`] if nothing was parsed.
pub fn from_jsonl(text: &str) -> Result<Vec<Uop>, ParseTraceError> {
    let mut uops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let u = Json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| Uop::from_json(&v))
            .map_err(|reason| ParseTraceError::Malformed {
                line: i + 1,
                reason,
            })?;
        uops.push(u);
    }
    if uops.is_empty() {
        return Err(ParseTraceError::Empty);
    }
    Ok(uops)
}

/// Replays a recorded trace as a [`UopSource`], looping when it reaches
/// the end (the simulator's runs are bounded by instruction count, so a
/// finite trace must wrap).
#[derive(Debug, Clone)]
pub struct TraceThread {
    uops: Vec<Uop>,
    pos: usize,
    laps: u64,
}

impl TraceThread {
    /// Wraps an in-memory trace.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn new(uops: Vec<Uop>) -> Self {
        assert!(!uops.is_empty(), "trace must contain instructions");
        TraceThread {
            uops,
            pos: 0,
            laps: 0,
        }
    }

    /// Parses and wraps a JSON-lines trace.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseTraceError`] from [`from_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Self, ParseTraceError> {
        Ok(Self::new(from_jsonl(text)?))
    }

    /// Instructions in one lap of the trace.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// How many times the trace has wrapped.
    pub fn laps(&self) -> u64 {
        self.laps
    }
}

impl UopSource for TraceThread {
    fn next_uop(&mut self) -> Uop {
        let u = self.uops[self.pos];
        self.pos += 1;
        if self.pos == self.uops.len() {
            self.pos = 0;
            self.laps += 1;
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::by_name;
    use crate::thread::WorkloadThread;
    use cgct_cache::Addr;
    use cgct_cpu::UopKind;

    #[test]
    fn record_and_replay_roundtrip() {
        let mut src = WorkloadThread::new(by_name("ocean").unwrap(), 1, 4, 9);
        let uops = record(&mut src, 500);
        let text = to_jsonl(&uops).unwrap();
        let mut t = TraceThread::from_jsonl(&text).unwrap();
        for u in &uops {
            assert_eq!(t.next_uop(), *u);
        }
        assert_eq!(t.laps(), 1);
    }

    #[test]
    fn every_uop_kind_roundtrips_exactly() {
        use cgct_cpu::BranchKind;
        // One of each variant, with an address above 2^53 to prove the
        // JSON layer keeps u64 values integer-exact.
        let big = Addr(0xdead_beef_dead_beef);
        let uops = vec![
            Uop::simple(4, UopKind::IntAlu),
            Uop::simple(8, UopKind::IntMult),
            Uop::simple(12, UopKind::FpAlu),
            Uop {
                pc: 16,
                kind: UopKind::Load {
                    addr: big,
                    store_intent: true,
                },
                dep_dist: 2,
            },
            Uop::simple(20, UopKind::Store { addr: big }),
            Uop::simple(24, UopKind::Dcbz { addr: Addr(0x200) }),
            Uop::simple(
                28,
                UopKind::Branch {
                    kind: BranchKind::Conditional,
                    taken: true,
                },
            ),
            Uop::simple(
                32,
                UopKind::Branch {
                    kind: BranchKind::Call,
                    taken: true,
                },
            ),
            Uop::simple(
                36,
                UopKind::Branch {
                    kind: BranchKind::Return,
                    taken: false,
                },
            ),
        ];
        let text = to_jsonl(&uops).unwrap();
        let replayed = from_jsonl(&text).unwrap();
        assert_eq!(replayed, uops);
    }

    #[test]
    fn trace_wraps_at_end() {
        let uops = vec![
            Uop::simple(4, UopKind::IntAlu),
            Uop::simple(
                8,
                UopKind::Load {
                    addr: Addr(0x100),
                    store_intent: false,
                },
            ),
        ];
        let mut t = TraceThread::new(uops.clone());
        for _ in 0..3 {
            assert_eq!(t.next_uop(), uops[0]);
            assert_eq!(t.next_uop(), uops[1]);
        }
        assert_eq!(t.laps(), 3);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a trace\n\n{\"pc\":4,\"kind\":\"IntAlu\",\"dep_dist\":0}\n";
        let t = TraceThread::from_jsonl(text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let text = "{\"pc\":4,\"kind\":\"IntAlu\",\"dep_dist\":0}\nnot json\n";
        match from_jsonl(text) {
            Err(ParseTraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(
            from_jsonl("# nothing\n"),
            Err(ParseTraceError::Empty)
        ));
    }

    #[test]
    #[should_panic(expected = "must contain instructions")]
    fn empty_vec_rejected() {
        let _ = TraceThread::new(Vec::new());
    }
}
