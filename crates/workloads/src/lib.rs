//! Synthetic multiprocessor workloads modeled on the CGCT paper's
//! benchmark suite (Table 4).
//!
//! The paper evaluates nine workloads — SPLASH-2 Ocean/Raytrace/Barnes, a
//! SPECint2000Rate multiprogrammed mix, SPECweb99, SPECjbb2000, TPC-W,
//! TPC-B, and TPC-H — from AIX full-system checkpoints. Those checkpoints
//! are not reproducible here, so each benchmark is replaced by a seeded
//! synthetic generator that reproduces the *sharing characteristics* that
//! drive the paper's results: what fraction of memory requests touch data
//! cached nowhere else, read-only shared data, or migratory data; code
//! footprint; OS page-zeroing (`dcbz`) behaviour; and spatial locality
//! within regions. See `DESIGN.md` for the substitution rationale.
//!
//! Each benchmark is a [`BenchmarkSpec`]; [`WorkloadThread`] interprets a
//! spec deterministically for one core, implementing
//! [`cgct_cpu::UopSource`].
//!
//! # Examples
//!
//! ```
//! use cgct_workloads::{registry, WorkloadThread};
//! use cgct_cpu::UopSource;
//!
//! let spec = registry::by_name("tpc-w").expect("known benchmark");
//! let mut thread = WorkloadThread::new(spec.clone(), 0, 4, 42);
//! let uop = thread.next_uop();
//! assert!(uop.pc > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod layout;
pub mod registry;
pub mod spec;
pub mod thread;
pub mod trace;

pub use layout::{AddressMap, Segment};
pub use registry::{all_benchmarks, by_name, commercial_names, table4, BenchmarkInfo};
pub use spec::{BenchmarkSpec, PhaseSpec, StreamSpec};
pub use thread::WorkloadThread;
