//! Benchmark specifications: the tunable parameters that a
//! [`crate::WorkloadThread`] interprets.

use crate::layout::Segment;

/// One memory-access stream: a working set in a segment with a locality
/// and store profile. A phase mixes several streams by weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// The segment the stream draws addresses from.
    pub segment: Segment,
    /// Relative selection weight among the phase's memory operations.
    pub weight: f32,
    /// Bytes of the segment this stream touches (per core for private
    /// segments, machine-wide for shared ones).
    pub working_set: u64,
    /// Mean number of consecutive accesses before jumping to a random
    /// position (spatial locality; long runs keep regions hot).
    pub run_length: u32,
    /// Bytes between consecutive accesses in a run.
    pub stride: u32,
    /// Probability that an access is a store.
    pub store_fraction: f32,
    /// Probability that a load carries a store-intent hint (drives
    /// R10000-style exclusive prefetching).
    pub store_intent: f32,
}

impl StreamSpec {
    /// A convenient private sequential-scan stream.
    pub fn private_scan(weight: f32, working_set: u64, store_fraction: f32) -> StreamSpec {
        StreamSpec {
            segment: Segment::PrivateHeap,
            weight,
            working_set,
            run_length: 32,
            stride: 8,
            store_fraction,
            store_intent: 0.3,
        }
    }
}

/// One execution phase: an instruction mix plus a set of streams. Phases
/// cycle in order, `instructions` each, letting a spec express e.g.
/// TPC-H's parallel scan followed by a merge.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label for reports.
    pub name: &'static str,
    /// Dynamic instructions per visit of this phase.
    pub instructions: u64,
    /// Fraction of instructions that are loads/stores/dcbz.
    pub mem_fraction: f32,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f32,
    /// Fraction of the remaining compute that is floating point.
    pub fp_fraction: f32,
    /// Memory streams active in this phase.
    pub streams: Vec<StreamSpec>,
    /// Instructions per loop body (code locality).
    pub loop_length: u32,
    /// Loop iterations before control moves to another function.
    pub loop_iterations: u32,
    /// Fraction of conditional branches with data-dependent (random)
    /// outcomes — drives the misprediction rate.
    pub branch_noise: f32,
    /// Pages zeroed with `dcbz` per thousand instructions (AIX-style page
    /// initialization; Figure 2's "DCB ops" category).
    pub dcbz_pages_per_kilo_instr: f32,
}

impl PhaseSpec {
    /// Total stream weight (used for normalization).
    pub fn total_stream_weight(&self) -> f32 {
        self.streams.iter().map(|s| s.weight).sum()
    }
}

/// A complete synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Short machine-readable name (e.g. `"tpc-w"`).
    pub name: &'static str,
    /// Table 4 category (Scientific, Web, OLTP, ...).
    pub category: &'static str,
    /// Table 4 description.
    pub description: &'static str,
    /// Whether all cores run the same binary (threaded) or their own
    /// (multiprogrammed).
    pub shared_code: bool,
    /// Bytes of instruction space touched.
    pub code_footprint: u64,
    /// Fraction of instructions with a short register dependence on a
    /// recent producer (ILP control: higher = less ILP).
    pub dep_short_fraction: f32,
    /// Execution phases, cycled in order.
    pub phases: Vec<PhaseSpec>,
}

impl BenchmarkSpec {
    /// Validates internal consistency; called by the registry tests and
    /// `WorkloadThread::new`.
    ///
    /// # Panics
    ///
    /// Panics if fractions are out of range, a phase has no streams, or a
    /// working set/stride is zero.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "{}: no phases", self.name);
        assert!(
            self.code_footprint >= 64,
            "{}: code footprint too small",
            self.name
        );
        for p in &self.phases {
            assert!(p.instructions > 0, "{}/{}: empty phase", self.name, p.name);
            assert!(
                (0.0..=1.0).contains(&p.mem_fraction)
                    && (0.0..=1.0).contains(&p.branch_fraction)
                    && (0.0..=1.0).contains(&p.fp_fraction)
                    && p.mem_fraction + p.branch_fraction <= 1.0,
                "{}/{}: bad instruction mix",
                self.name,
                p.name
            );
            assert!(
                !p.streams.is_empty(),
                "{}/{}: no streams",
                self.name,
                p.name
            );
            assert!(
                p.total_stream_weight() > 0.0,
                "{}/{}: zero weight",
                self.name,
                p.name
            );
            assert!(p.loop_length > 0 && p.loop_iterations > 0);
            for s in &p.streams {
                assert!(
                    s.working_set >= 64,
                    "{}/{}: tiny working set",
                    self.name,
                    p.name
                );
                assert!(s.stride > 0, "{}/{}: zero stride", self.name, p.name);
                assert!(s.run_length > 0, "{}/{}: zero run", self.name, p.name);
                assert!((0.0..=1.0).contains(&s.store_fraction));
                assert!((0.0..=1.0).contains(&s.store_intent));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_phase() -> PhaseSpec {
        PhaseSpec {
            name: "main",
            instructions: 1000,
            mem_fraction: 0.4,
            branch_fraction: 0.15,
            fp_fraction: 0.0,
            streams: vec![StreamSpec::private_scan(1.0, 1 << 20, 0.3)],
            loop_length: 32,
            loop_iterations: 16,
            branch_noise: 0.05,
            dcbz_pages_per_kilo_instr: 0.0,
        }
    }

    fn minimal_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test",
            category: "Test",
            description: "unit test workload",
            shared_code: true,
            code_footprint: 64 * 1024,
            dep_short_fraction: 0.3,
            phases: vec![minimal_phase()],
        }
    }

    #[test]
    fn valid_spec_passes() {
        minimal_spec().validate();
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn empty_phases_rejected() {
        let mut s = minimal_spec();
        s.phases.clear();
        s.validate();
    }

    #[test]
    #[should_panic(expected = "bad instruction mix")]
    fn overcommitted_mix_rejected() {
        let mut s = minimal_spec();
        s.phases[0].mem_fraction = 0.7;
        s.phases[0].branch_fraction = 0.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "no streams")]
    fn streamless_phase_rejected() {
        let mut s = minimal_spec();
        s.phases[0].streams.clear();
        s.validate();
    }

    #[test]
    #[should_panic(expected = "zero stride")]
    fn zero_stride_rejected() {
        let mut s = minimal_spec();
        s.phases[0].streams[0].stride = 0;
        s.validate();
    }

    #[test]
    fn stream_weight_sums() {
        let mut p = minimal_phase();
        p.streams.push(StreamSpec::private_scan(3.0, 1 << 16, 0.0));
        assert!((p.total_stream_weight() - 4.0).abs() < 1e-6);
    }
}
