//! The nine benchmarks of Table 4, as synthetic specifications.
//!
//! Each spec is calibrated toward the sharing characteristics the paper
//! reports for its workload: the fraction of requests touching data cached
//! nowhere else (Figure 2 ranges from 15% for the merge-heavy TPC-H to 94%
//! for the multiprogrammed SPECint2000Rate mix), code footprint, `dcbz`
//! page-zeroing rates, and spatial locality. The absolute instruction
//! streams are synthetic; see `DESIGN.md` for the substitution argument.

use crate::layout::Segment;
use crate::spec::{BenchmarkSpec, PhaseSpec, StreamSpec};

/// Table 4 metadata for one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Short name (registry key).
    pub name: &'static str,
    /// Table 4 category.
    pub category: &'static str,
    /// Table 4 comments column.
    pub comments: &'static str,
}

/// Helper: a stream over a shared segment.
fn stream(
    segment: Segment,
    weight: f32,
    working_set: u64,
    run_length: u32,
    stride: u32,
    store_fraction: f32,
) -> StreamSpec {
    StreamSpec {
        segment,
        weight,
        working_set,
        run_length,
        stride,
        store_fraction,
        // Store intent tracks how write-heavy the stream is: a load is a
        // candidate for exclusive prefetching only when a store to its
        // line is actually coming (MIPS R10000-style hint).
        store_intent: (store_fraction * 0.6).min(0.3),
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// SPLASH-2 Ocean: 514×514 grid, block-partitioned. Each core sweeps its
/// own grid blocks (large private FP working set, long sequential runs)
/// and exchanges boundary rows with neighbours.
fn ocean() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "ocean",
        category: "Scientific",
        description: "SPLASH-2 Ocean Simulation, 514 x 514 Grid",
        shared_code: true,
        code_footprint: 64 * KB,
        dep_short_fraction: 0.25,
        phases: vec![PhaseSpec {
            name: "sweep",
            instructions: 400_000,
            mem_fraction: 0.40,
            branch_fraction: 0.08,
            fp_fraction: 0.75,
            streams: vec![
                // Grid blocks: ~2 MB per core of doubles, swept in rows.
                stream(Segment::PrivateHeap, 0.055, 2 * MB, 64, 8, 0.35),
                // Hot per-core coefficients/stack: stays L2 resident.
                stream(Segment::PrivateHeap, 0.86, 128 * KB, 48, 8, 0.3),
                // Boundary exchange: narrow shared strips, mostly read.
                stream(Segment::SharedReadWrite, 0.04, 256 * KB, 16, 8, 0.08),
                // Barrier/lock traffic.
                stream(Segment::Migratory, 0.005, 2 * KB, 2, 8, 0.5),
            ],
            loop_length: 24,
            loop_iterations: 64,
            branch_noise: 0.02,
            dcbz_pages_per_kilo_instr: 0.0,
        }],
    }
}

/// SPLASH-2 Raytrace (car): a large read-only scene shared by all cores,
/// private ray stacks, and a migratory work queue.
fn raytrace() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "raytrace",
        category: "Scientific",
        description: "SPLASH-2 Raytracing application, Car",
        shared_code: true,
        code_footprint: 96 * KB,
        dep_short_fraction: 0.35,
        phases: vec![PhaseSpec {
            name: "trace",
            instructions: 400_000,
            mem_fraction: 0.35,
            branch_fraction: 0.12,
            fp_fraction: 0.6,
            streams: vec![
                // Scene/BSP tree: big, read-only, irregular walks.
                stream(Segment::SharedReadOnly, 0.005, 3 * MB, 6, 64, 0.0),
                // Hot top levels of the BSP tree: clean-shared everywhere.
                stream(Segment::SharedReadOnly, 0.30, 160 * KB, 8, 64, 0.0),
                // Private ray stacks and framebuffer tiles.
                stream(Segment::PrivateHeap, 0.020, MB, 32, 8, 0.3),
                // Hot private state: L2 resident.
                stream(Segment::PrivateHeap, 0.65, 128 * KB, 32, 8, 0.3),
                // Work-queue head: migratory.
                stream(Segment::Migratory, 0.007, 4 * KB, 2, 8, 0.5),
            ],
            loop_length: 28,
            loop_iterations: 12,
            branch_noise: 0.10,
            dcbz_pages_per_kilo_instr: 0.0,
        }],
    }
}

/// SPLASH-2 Barnes-Hut (8K particles): fine-grain, irregularly shared
/// particle/tree data dominates — the paper's hardest case (lowest
/// fraction of unnecessary broadcasts, 21-22% broadcast reduction).
fn barnes() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "barnes",
        category: "Scientific",
        description: "SPLASH-2 Barnes-Hut N-body Simulation, 8K Particles",
        shared_code: true,
        code_footprint: 96 * KB,
        dep_short_fraction: 0.4,
        phases: vec![PhaseSpec {
            name: "force+tree",
            instructions: 400_000,
            mem_fraction: 0.38,
            branch_fraction: 0.12,
            fp_fraction: 0.6,
            streams: vec![
                // Particle bodies + octree: shared, read-write, short
                // irregular runs — fits in the combined caches, so other
                // cores usually hold copies.
                stream(Segment::SharedReadWrite, 0.004, 1536 * KB, 3, 64, 0.20),
                // Hot tree top: resident in every cache, updated rarely
                // enough that reads mostly hit but updates ping-pong.
                stream(Segment::SharedReadWrite, 0.42, 64 * KB, 4, 64, 0.030),
                // Per-core work lists.
                stream(Segment::PrivateHeap, 0.52, 128 * KB, 16, 8, 0.3),
                stream(Segment::PrivateHeap, 0.015, MB, 16, 8, 0.3),
                // Tree-build locks: heavily migratory.
                stream(Segment::Migratory, 0.006, 8 * KB, 2, 8, 0.6),
            ],
            loop_length: 20,
            loop_iterations: 10,
            branch_noise: 0.08,
            dcbz_pages_per_kilo_instr: 0.0,
        }],
    }
}

/// SPECint2000Rate: independent processes with private working sets and
/// per-core binaries — nearly every broadcast is unnecessary (Figure 2's
/// 94% case). The OS still zeroes pages at process working-set growth.
fn specint_rate() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "specint2000rate",
        category: "Multiprogramming",
        description: "SPEC CPU Integer Benchmarks, combination of reduced-input rate runs",
        shared_code: false,
        code_footprint: 160 * KB,
        dep_short_fraction: 0.45,
        phases: vec![PhaseSpec {
            name: "rate",
            instructions: 400_000,
            mem_fraction: 0.35,
            branch_fraction: 0.16,
            fp_fraction: 0.02,
            streams: vec![
                // Private heaps, mix of pointer-ish short runs and scans.
                stream(Segment::PrivateHeap, 0.045, 4 * MB, 12, 8, 0.35),
                stream(Segment::PrivateHeap, 0.915, 96 * KB, 48, 8, 0.4),
                // Occasional syscalls touch kernel structures.
                stream(Segment::Kernel, 0.02, 256 * KB, 8, 64, 0.08),
            ],
            loop_length: 18,
            loop_iterations: 24,
            branch_noise: 0.07,
            dcbz_pages_per_kilo_instr: 0.03,
        }],
    }
}

/// SPECweb99 (Zeus): large instruction footprint, heavy kernel/network
/// activity, per-connection private buffers zeroed on allocation, and a
/// shared file cache.
fn specweb99() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "specweb99",
        category: "Web",
        description: "SPECweb99, Zeus Web Server 3.3.7, 300 HTTP Requests",
        shared_code: true,
        code_footprint: 320 * KB,
        dep_short_fraction: 0.4,
        phases: vec![PhaseSpec {
            name: "serve",
            instructions: 400_000,
            mem_fraction: 0.36,
            branch_fraction: 0.17,
            fp_fraction: 0.0,
            streams: vec![
                // Per-connection state and response buffers.
                stream(Segment::InterleavedHeap, 0.022, 3 * MB, 32, 8, 0.4),
                // Hot per-worker state: L2 resident.
                stream(Segment::PrivateHeap, 0.57, 128 * KB, 32, 8, 0.35),
                // Shared static-file cache, read-mostly.
                stream(Segment::SharedReadOnly, 0.012, 4 * MB, 32, 64, 0.0),
                // Kernel network stack: shared; the hot part is resident
                // in all caches and written occasionally.
                stream(Segment::Kernel, 0.007, MB, 12, 64, 0.10),
                stream(Segment::Kernel, 0.33, 96 * KB, 8, 64, 0.04),
                // Listen queue / accept locks.
                stream(Segment::Migratory, 0.008, 8 * KB, 2, 8, 0.5),
            ],
            loop_length: 14,
            loop_iterations: 6,
            branch_noise: 0.12,
            dcbz_pages_per_kilo_instr: 0.05,
        }],
    }
}

/// SPECjbb2000 (20 warehouses): warehouses are core-private Java heaps;
/// allocation zeroes fresh pages; a modest shared order board.
fn specjbb2000() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "specjbb2000",
        category: "Web",
        description: "SPECjbb2000, IBM jdk 1.1.8 with JIT, 20 warehouses, 2400 requests",
        shared_code: true,
        code_footprint: 256 * KB,
        dep_short_fraction: 0.4,
        phases: vec![PhaseSpec {
            name: "transactions",
            instructions: 400_000,
            mem_fraction: 0.38,
            branch_fraction: 0.15,
            fp_fraction: 0.02,
            streams: vec![
                // Warehouse objects: private, allocation-heavy.
                stream(Segment::InterleavedHeap, 0.07, 5 * MB, 24, 8, 0.4),
                // Hot per-warehouse working set: L2 resident.
                stream(Segment::PrivateHeap, 0.75, 160 * KB, 32, 8, 0.4),
                // Shared company-wide structures, read-mostly.
                stream(Segment::SharedReadWrite, 0.13, 128 * KB, 8, 64, 0.04),
                stream(Segment::Migratory, 0.008, 8 * KB, 2, 8, 0.5),
            ],
            loop_length: 16,
            loop_iterations: 8,
            branch_noise: 0.10,
            dcbz_pages_per_kilo_instr: 0.06,
        }],
    }
}

/// TPC-W (DB tier, browsing mix): dominated by buffer-pool scans of a
/// large database; browsing transactions rarely conflict — the paper's
/// biggest winner (21.7% speedup with 512 B regions).
fn tpcw() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "tpc-w",
        category: "Web",
        description: "TPC-W e-Commerce benchmark, DB tier, browsing mix, 25 web transactions",
        shared_code: true,
        code_footprint: 256 * KB,
        dep_short_fraction: 0.35,
        phases: vec![PhaseSpec {
            name: "browse",
            instructions: 400_000,
            mem_fraction: 0.40,
            branch_fraction: 0.14,
            fp_fraction: 0.0,
            streams: vec![
                // Buffer pool: huge, read-mostly, streamed per query.
                stream(Segment::SharedReadOnly, 0.030, 16 * MB, 48, 64, 0.0),
                // Hot catalog pages of the pool: clean-shared.
                stream(Segment::SharedReadOnly, 0.22, 192 * KB, 16, 64, 0.0),
                // Private sort/work areas per backend.
                stream(Segment::InterleavedHeap, 0.075, 4 * MB, 40, 8, 0.4),
                // Hot private executor state.
                stream(Segment::PrivateHeap, 0.60, 128 * KB, 32, 8, 0.35),
                // Catalog/lock manager, read-mostly.
                stream(Segment::SharedReadWrite, 0.07, 128 * KB, 6, 64, 0.05),
                stream(Segment::Migratory, 0.008, 4 * KB, 2, 8, 0.5),
            ],
            loop_length: 16,
            loop_iterations: 10,
            branch_noise: 0.10,
            dcbz_pages_per_kilo_instr: 0.08,
        }],
    }
}

/// TPC-B (IBM DB2, 20 clients): classic OLTP — hot shared pages, a
/// migratory log tail and lock manager, moderate private work.
fn tpcb() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "tpc-b",
        category: "OLTP",
        description: "TPC-B OLTP benchmark, IBM DB2 6.1, 20 clients, 1000 transactions",
        shared_code: true,
        code_footprint: 192 * KB,
        dep_short_fraction: 0.4,
        phases: vec![PhaseSpec {
            name: "transactions",
            instructions: 400_000,
            mem_fraction: 0.38,
            branch_fraction: 0.15,
            fp_fraction: 0.0,
            streams: vec![
                // Account/branch/teller pages: shared, updated in place
                // (cold part: occasional misses).
                stream(Segment::SharedReadWrite, 0.009, 2 * MB, 6, 64, 0.30),
                // Branch/teller hot rows: resident, updates ping-pong.
                stream(Segment::SharedReadWrite, 0.17, 128 * KB, 4, 64, 0.04),
                // Private transaction state.
                stream(Segment::InterleavedHeap, 0.020, 2 * MB, 24, 8, 0.4),
                stream(Segment::PrivateHeap, 0.55, 128 * KB, 32, 8, 0.35),
                // Log tail + latches: migratory hot spots.
                stream(Segment::Migratory, 0.006, 16 * KB, 3, 8, 0.6),
                // Kernel (I/O path), read-mostly.
                stream(Segment::Kernel, 0.225, 96 * KB, 8, 64, 0.03),
            ],
            loop_length: 15,
            loop_iterations: 6,
            branch_noise: 0.12,
            dcbz_pages_per_kilo_instr: 0.06,
        }],
    }
}

/// TPC-H Q12 (IBM DB2, 512 MB DB): a parallel scan phase that CGCT loves,
/// followed by a merge phase full of cache-to-cache transfers — overall
/// the paper's smallest opportunity (best case only ~15% of broadcasts).
fn tpch() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "tpc-h",
        category: "Decision Support",
        description: "TPC-H decision support, IBM DB2 6.1, query 12 on a 512 MB database",
        shared_code: true,
        code_footprint: 96 * KB,
        dep_short_fraction: 0.35,
        phases: vec![
            PhaseSpec {
                name: "scan",
                instructions: 15_000,
                mem_fraction: 0.30,
                branch_fraction: 0.12,
                fp_fraction: 0.05,
                streams: vec![
                    // Partitioned table scan: private slices, sequential,
                    // but the working set largely fits in the L2 so few
                    // requests reach the bus.
                    stream(Segment::PrivateHeap, 0.93, 512 * KB, 64, 8, 0.25),
                    stream(Segment::SharedReadWrite, 0.07, 128 * KB, 8, 64, 0.08),
                ],
                loop_length: 24,
                loop_iterations: 32,
                branch_noise: 0.04,
                dcbz_pages_per_kilo_instr: 0.01,
            },
            PhaseSpec {
                name: "merge",
                instructions: 50_000,
                mem_fraction: 0.35,
                branch_fraction: 0.14,
                fp_fraction: 0.05,
                streams: vec![
                    // Aggregation hash tables: shared, written by all,
                    // resident in the other caches (cache-to-cache).
                    stream(Segment::SharedReadWrite, 0.008, 1024 * KB, 4, 64, 0.35),
                    // Hot buckets: resident everywhere; updates ping-pong
                    // between the cores (cache-to-cache transfers).
                    stream(Segment::SharedReadWrite, 0.38, 64 * KB, 3, 64, 0.09),
                    stream(Segment::Migratory, 0.004, 16 * KB, 2, 8, 0.6),
                    stream(Segment::PrivateHeap, 0.605, 192 * KB, 16, 8, 0.3),
                ],
                loop_length: 16,
                loop_iterations: 8,
                branch_noise: 0.10,
                dcbz_pages_per_kilo_instr: 0.01,
            },
        ],
    }
}

/// All nine benchmarks, in the paper's Table 4 order.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        ocean(),
        raytrace(),
        barnes(),
        specint_rate(),
        specweb99(),
        specjbb2000(),
        tpcw(),
        tpcb(),
        tpch(),
    ]
}

/// Looks up a benchmark by its short name (case-insensitive).
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    let lower = name.to_ascii_lowercase();
    all_benchmarks().into_iter().find(|b| b.name == lower)
}

/// The benchmarks the paper calls "commercial" (Figure 8's 10.4% average
/// is over these).
pub fn commercial_names() -> &'static [&'static str] {
    &["specweb99", "specjbb2000", "tpc-w", "tpc-b", "tpc-h"]
}

/// Table 4 rows.
pub fn table4() -> Vec<BenchmarkInfo> {
    all_benchmarks()
        .into_iter()
        .map(|b| BenchmarkInfo {
            name: b.name,
            category: b.category,
            comments: b.description,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_benchmarks_all_valid() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 9);
        for b in &all {
            b.validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("tpc-w").is_some());
        assert!(by_name("TPC-W").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn commercial_subset_exists() {
        for name in commercial_names() {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert_eq!(commercial_names().len(), 5);
    }

    #[test]
    fn specint_is_multiprogrammed() {
        let b = by_name("specint2000rate").unwrap();
        assert!(!b.shared_code, "rate runs use per-core binaries");
    }

    #[test]
    fn tpch_has_scan_and_merge_phases() {
        let b = by_name("tpc-h").unwrap();
        let names: Vec<&str> = b.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["scan", "merge"]);
    }

    #[test]
    fn table4_matches_registry() {
        let rows = table4();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].category, "Scientific");
        assert!(rows.iter().any(|r| r.category == "Decision Support"));
    }

    #[test]
    fn commercial_workloads_zero_pages() {
        // The paper attributes most DCB operations to AIX page zeroing in
        // the commercial workloads.
        for name in ["specweb99", "specjbb2000", "tpc-w", "tpc-b"] {
            let b = by_name(name).unwrap();
            assert!(
                b.phases.iter().any(|p| p.dcbz_pages_per_kilo_instr > 0.0),
                "{name} should dcbz"
            );
        }
    }
}
