//! The workload interpreter: turns a [`BenchmarkSpec`] into a
//! deterministic, per-core dynamic instruction stream.

use crate::layout::{AddressMap, Segment};
use crate::spec::{BenchmarkSpec, PhaseSpec, StreamSpec};
use cgct_cpu::{BranchKind, Uop, UopKind, UopSource};
use cgct_sim::Xoshiro256pp;
use std::collections::VecDeque;

/// Bytes of page pool each core cycles through when zeroing pages.
const PAGE_POOL_BYTES: u64 = 8 * 1024 * 1024;
/// Page size zeroed by a `dcbz` burst.
const PAGE_BYTES: u64 = 4096;
/// Line size (for `dcbz` stepping).
const LINE_BYTES: u64 = 64;

/// Per-stream cursor state.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    pos: u64,
    run_left: u32,
}

/// The current phase's parameters, flattened into one contiguous block
/// at phase entry. The per-uop hot path reads these instead of chasing
/// `spec.phases[idx]` (two pointer hops and a bounds check per field),
/// and the weighted stream draw reuses the pre-clamped weights and
/// their precomputed total instead of re-summing on every call. The
/// cached values are pure copies, so draw sequences and results are
/// bit-identical to reading the spec directly.
#[derive(Debug, Clone)]
struct PhaseCache {
    loop_length: u32,
    loop_iterations: u32,
    branch_noise: f32,
    mem_fraction: f32,
    branch_fraction: f32,
    fp_fraction: f32,
    /// Raw `dcbz_pages_per_kilo_instr`; gates whether a burst draw is
    /// consumed at all (the draw sequence depends on this exact test).
    dcbz_rate: f32,
    /// `dcbz_pages_per_kilo_instr / 1000`, the per-instruction burst
    /// probability compared against one `gen_f32` draw.
    dcbz_threshold: f32,
    streams: Vec<StreamSpec>,
    /// Stream weights with negatives clamped to zero, exactly as
    /// `choose_weighted` clamps them per call.
    weights: Vec<f32>,
    /// Sum of the clamped weights (same order, so the same float).
    weight_total: f32,
    /// Per-stream `(working_set / stride).max(1)`, hoisting the
    /// run-restart division out of the draw path.
    stream_slots: Vec<u64>,
    /// Per-stream `run_length.max(1) * 2`, the inclusive upper bound of
    /// the run-length draw.
    run_span: Vec<u32>,
}

impl PhaseCache {
    fn from_phase(p: &PhaseSpec) -> Self {
        let weights: Vec<f32> = p.streams.iter().map(|s| s.weight.max(0.0)).collect();
        let weight_total = weights.iter().sum();
        let stream_slots = p
            .streams
            .iter()
            .map(|s| (s.working_set / s.stride as u64).max(1))
            .collect();
        let run_span = p.streams.iter().map(|s| s.run_length.max(1) * 2).collect();
        PhaseCache {
            loop_length: p.loop_length,
            loop_iterations: p.loop_iterations,
            branch_noise: p.branch_noise,
            mem_fraction: p.mem_fraction,
            branch_fraction: p.branch_fraction,
            fp_fraction: p.fp_fraction,
            dcbz_rate: p.dcbz_pages_per_kilo_instr,
            dcbz_threshold: p.dcbz_pages_per_kilo_instr / 1000.0,
            streams: p.streams.clone(),
            weights,
            weight_total,
            stream_slots,
            run_span,
        }
    }
}

/// One core's dynamic instruction stream for a benchmark.
///
/// Implements [`UopSource`]; the stream is infinite and fully determined
/// by `(spec, core, total_cores, seed)`.
#[derive(Debug, Clone)]
pub struct WorkloadThread {
    spec: BenchmarkSpec,
    map: AddressMap,
    rng: Xoshiro256pp,
    phase_idx: usize,
    phase_remaining: u64,
    cursors: Vec<Cursor>,
    /// Current phase's parameters, flattened for the per-uop hot path.
    cur: PhaseCache,
    // Code state.
    pc: u64,
    loop_start: u64,
    loop_pos: u32,
    loop_iter: u32,
    // Deferred uops (dcbz bursts).
    pending: VecDeque<Uop>,
    page_cursor: u64,
    generated: u64,
}

impl WorkloadThread {
    /// Creates the stream for `core` (of `total_cores`) with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation or `core >= total_cores`.
    pub fn new(spec: BenchmarkSpec, core: usize, total_cores: usize, seed: u64) -> Self {
        spec.validate();
        let map = AddressMap::new(core, total_cores, !spec.shared_code);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9));
        let code_base = map.base(Segment::Code).0;
        let pc = code_base;
        let n_streams = spec.phases[0].streams.len();
        let cur = PhaseCache::from_phase(&spec.phases[0]);
        let phase_remaining = spec.phases[0].instructions;
        // Desynchronize cores slightly so lockstep artifacts don't arise.
        let skew = rng.gen_range(0..64);
        let mut t = WorkloadThread {
            spec,
            map,
            rng,
            phase_idx: 0,
            phase_remaining,
            cursors: vec![Cursor::default(); n_streams],
            cur,
            pc,
            loop_start: pc,
            loop_pos: 0,
            loop_iter: 0,
            pending: VecDeque::new(),
            page_cursor: 0,
            generated: 0,
        };
        for _ in 0..skew {
            let _ = t.generate();
        }
        t
    }

    /// Instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The benchmark spec driving this stream.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    fn enter_phase(&mut self, idx: usize) {
        self.phase_idx = idx;
        self.phase_remaining = self.spec.phases[idx].instructions;
        self.cursors = vec![Cursor::default(); self.spec.phases[idx].streams.len()];
        self.cur = PhaseCache::from_phase(&self.spec.phases[idx]);
    }

    fn advance_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc += 4;
        self.loop_pos += 1;
        pc
    }

    fn new_function(&mut self) {
        let body_bytes = self.cur.loop_length as u64 * 4;
        let span = self.spec.code_footprint.saturating_sub(body_bytes).max(64);
        let off = (self.rng.gen_range(0..span) / 64) * 64;
        self.loop_start = self.map.resolve(Segment::Code, off).0;
        self.pc = self.loop_start;
        self.loop_pos = 0;
        self.loop_iter = 0;
    }

    fn gen_mem_kind(&mut self) -> UopKind {
        // Weighted stream selection: same draw and scan as
        // `Xoshiro256pp::choose_weighted`, but against the pre-clamped
        // cached weights and their precomputed total.
        let mut pick = self.rng.gen_f32() * self.cur.weight_total;
        let mut idx = self.cur.weights.len() - 1;
        for (i, &w) in self.cur.weights.iter().enumerate() {
            if pick < w {
                idx = i;
                break;
            }
            pick -= w;
        }
        let s = self.cur.streams[idx];
        let cur = &mut self.cursors[idx];
        if cur.run_left == 0 {
            let slots = self.cur.stream_slots[idx];
            cur.pos = self.rng.gen_range(0..slots) * s.stride as u64;
            cur.run_left = self.rng.gen_range(1..=self.cur.run_span[idx]);
        } else {
            let next = cur.pos + s.stride as u64;
            // Division is the hot-path cost here; wrap only when needed.
            cur.pos = if next >= s.working_set {
                next % s.working_set
            } else {
                next
            };
            cur.run_left -= 1;
        }
        let addr = self.map.resolve(s.segment, cur.pos);
        if self.rng.gen_f32() < s.store_fraction {
            UopKind::Store { addr }
        } else {
            UopKind::Load {
                addr,
                store_intent: self.rng.gen_f32() < s.store_intent,
            }
        }
    }

    fn maybe_dcbz_burst(&mut self) {
        if self.cur.dcbz_rate <= 0.0 || self.rng.gen_f32() >= self.cur.dcbz_threshold {
            return;
        }
        // The OS zeroes a fresh page line by line, then the application
        // immediately writes the start of it.
        let page = self.page_cursor;
        self.page_cursor = (self.page_cursor + PAGE_BYTES) % PAGE_POOL_BYTES;
        let pc = self.pc;
        for line in 0..(PAGE_BYTES / LINE_BYTES) {
            let addr = self
                .map
                .resolve(Segment::PagePool, page + line * LINE_BYTES);
            self.pending.push_back(Uop {
                pc,
                kind: UopKind::Dcbz { addr },
                dep_dist: 0,
            });
        }
        for word in 0..8 {
            let addr = self.map.resolve(Segment::PagePool, page + word * 8);
            self.pending.push_back(Uop {
                pc,
                kind: UopKind::Store { addr },
                dep_dist: 0,
            });
        }
    }

    fn generate(&mut self) -> Uop {
        if let Some(u) = self.pending.pop_front() {
            self.generated += 1;
            return u;
        }
        if self.phase_remaining == 0 {
            let next = (self.phase_idx + 1) % self.spec.phases.len();
            self.enter_phase(next);
        }
        self.phase_remaining -= 1;
        self.generated += 1;
        self.maybe_dcbz_burst();

        let loop_length = self.cur.loop_length;
        let loop_iterations = self.cur.loop_iterations;
        let branch_noise = self.cur.branch_noise;
        let mem_fraction = self.cur.mem_fraction;
        let branch_fraction = self.cur.branch_fraction;
        let fp_fraction = self.cur.fp_fraction;

        let dep_dist = if self.rng.gen_f32() < self.spec.dep_short_fraction {
            self.rng.gen_range(1..=2)
        } else {
            0
        };

        // Structural loop back-edge.
        if self.loop_pos >= loop_length - 1 {
            let pc = self.advance_pc();
            self.loop_iter += 1;
            let noisy = self.rng.gen_f32() < branch_noise;
            let take_backedge = (self.loop_iter < loop_iterations) ^ noisy;
            if take_backedge {
                self.pc = self.loop_start;
                self.loop_pos = 0;
            } else {
                self.new_function();
            }
            return Uop {
                pc,
                kind: UopKind::Branch {
                    kind: BranchKind::Conditional,
                    taken: take_backedge,
                },
                dep_dist: 0,
            };
        }

        let r = self.rng.gen_f32();
        let kind = if r < mem_fraction {
            self.gen_mem_kind()
        } else if r < mem_fraction + branch_fraction {
            // Forward conditional branch, usually not taken; noise makes a
            // fraction unpredictable. Not-taken keeps the PC sequential.
            UopKind::Branch {
                kind: BranchKind::Conditional,
                taken: self.rng.gen_f32() < branch_noise * 0.5,
            }
        } else if self.rng.gen_f32() < fp_fraction {
            if self.rng.gen_f32() < 0.3 {
                UopKind::FpMult
            } else {
                UopKind::FpAlu
            }
        } else if self.rng.gen_f32() < 0.05 {
            UopKind::IntMult
        } else {
            UopKind::IntAlu
        };
        let pc = self.advance_pc();
        Uop { pc, kind, dep_dist }
    }
}

impl cgct_sim::Snap for Cursor {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("p", Json::u64(self.pos)),
            ("r", Json::u64(self.run_left as u64)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(Cursor {
            pos: unsnap_field(v, "p")?,
            run_left: unsnap_field(v, "r")?,
        })
    }
}

impl UopSource for WorkloadThread {
    fn next_uop(&mut self) -> Uop {
        self.generate()
    }

    /// Snapshots the generator's dynamic state. The spec and address map
    /// are construction parameters and are not stored; the flattened
    /// phase cache is rebuilt from the spec on restore.
    fn snap_state(&self) -> Option<cgct_sim::Json> {
        use cgct_sim::{Json, Snap};
        Some(Json::obj([
            ("rng", self.rng.snap()),
            ("phase_idx", self.phase_idx.snap()),
            ("phase_remaining", Json::u64(self.phase_remaining)),
            ("cursors", self.cursors.snap()),
            ("pc", Json::u64(self.pc)),
            ("loop_start", Json::u64(self.loop_start)),
            ("loop_pos", Json::u64(self.loop_pos as u64)),
            ("loop_iter", Json::u64(self.loop_iter as u64)),
            ("pending", self.pending.snap()),
            ("page_cursor", Json::u64(self.page_cursor)),
            ("generated", Json::u64(self.generated)),
        ]))
    }

    /// Restores state captured by
    /// [`snap_state`](UopSource::snap_state) into a thread built from
    /// the same `(spec, core, total_cores, seed)`. The construction-time
    /// RNG skew is overwritten wholesale by the stored RNG state.
    fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::unsnap_field;
        let phase_idx: usize = unsnap_field(v, "phase_idx")?;
        if phase_idx >= self.spec.phases.len() {
            return Err("phase index out of range".to_string());
        }
        let cursors: Vec<Cursor> = unsnap_field(v, "cursors")?;
        if cursors.len() != self.spec.phases[phase_idx].streams.len() {
            return Err("cursor count does not match the phase's streams".to_string());
        }
        self.rng = unsnap_field(v, "rng")?;
        self.phase_idx = phase_idx;
        self.phase_remaining = unsnap_field(v, "phase_remaining")?;
        self.cursors = cursors;
        self.cur = PhaseCache::from_phase(&self.spec.phases[phase_idx]);
        self.pc = unsnap_field(v, "pc")?;
        self.loop_start = unsnap_field(v, "loop_start")?;
        self.loop_pos = unsnap_field(v, "loop_pos")?;
        self.loop_iter = unsnap_field(v, "loop_iter")?;
        self.pending = unsnap_field(v, "pending")?;
        self.page_cursor = unsnap_field(v, "page_cursor")?;
        self.generated = unsnap_field(v, "generated")?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // D002 mirror: test code is exempt by policy
mod tests {
    use super::*;
    use crate::spec::{PhaseSpec, StreamSpec};
    use std::collections::HashSet;

    fn spec_with(streams: Vec<StreamSpec>, dcbz: f32) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "t",
            category: "Test",
            description: "test",
            shared_code: true,
            code_footprint: 32 * 1024,
            dep_short_fraction: 0.3,
            phases: vec![PhaseSpec {
                name: "main",
                instructions: 100_000,
                mem_fraction: 0.4,
                branch_fraction: 0.1,
                fp_fraction: 0.1,
                streams,
                loop_length: 32,
                loop_iterations: 8,
                branch_noise: 0.05,
                dcbz_pages_per_kilo_instr: dcbz,
            }],
        }
    }

    fn private_spec() -> BenchmarkSpec {
        spec_with(vec![StreamSpec::private_scan(1.0, 1 << 20, 0.3)], 0.0)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadThread::new(private_spec(), 0, 4, 7);
        let mut b = WorkloadThread::new(private_spec(), 0, 4, 7);
        for _ in 0..10_000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WorkloadThread::new(private_spec(), 0, 4, 7);
        let mut b = WorkloadThread::new(private_spec(), 0, 4, 8);
        let same = (0..1000).filter(|_| a.next_uop() == b.next_uop()).count();
        assert!(same < 1000);
    }

    #[test]
    fn instruction_mix_approximates_spec() {
        let mut t = WorkloadThread::new(private_spec(), 0, 4, 1);
        let n = 100_000;
        let mut mem = 0;
        let mut branch = 0;
        for _ in 0..n {
            match t.next_uop().kind {
                k if k.is_mem() => mem += 1,
                UopKind::Branch { .. } => branch += 1,
                _ => {}
            }
        }
        let mem_frac = mem as f64 / n as f64;
        let br_frac = branch as f64 / n as f64;
        assert!((0.3..0.5).contains(&mem_frac), "mem fraction {mem_frac}");
        // branch_fraction plus the structural back-edge every 32 insts.
        assert!((0.08..0.22).contains(&br_frac), "branch fraction {br_frac}");
    }

    #[test]
    fn private_addresses_stay_in_working_set() {
        let spec = spec_with(vec![StreamSpec::private_scan(1.0, 1 << 16, 0.0)], 0.0);
        let mut t = WorkloadThread::new(spec, 2, 4, 3);
        let base = AddressMap::new(2, 4, false).base(Segment::PrivateHeap).0;
        for _ in 0..50_000 {
            if let Some(a) = t.next_uop().kind.mem_addr() {
                assert!(a.0 >= base && a.0 < base + (1 << 16), "escaped WS: {a}");
            }
        }
    }

    #[test]
    fn shared_streams_overlap_across_cores() {
        let shared = StreamSpec {
            segment: Segment::SharedReadWrite,
            weight: 1.0,
            working_set: 1 << 14,
            run_length: 8,
            stride: 64,
            store_fraction: 0.5,
            store_intent: 0.0,
        };
        let spec = spec_with(vec![shared], 0.0);
        let mut t0 = WorkloadThread::new(spec.clone(), 0, 2, 1);
        let mut t1 = WorkloadThread::new(spec, 1, 2, 99);
        let lines = |t: &mut WorkloadThread| -> HashSet<u64> {
            (0..20_000)
                .filter_map(|_| t.next_uop().kind.mem_addr())
                .map(|a| a.0 >> 6)
                .collect()
        };
        let l0 = lines(&mut t0);
        let l1 = lines(&mut t1);
        assert!(l0.intersection(&l1).count() > 0, "no sharing seen");
    }

    #[test]
    fn dcbz_bursts_zero_whole_pages() {
        let spec = spec_with(vec![StreamSpec::private_scan(1.0, 1 << 20, 0.3)], 5.0);
        let mut t = WorkloadThread::new(spec, 0, 4, 11);
        let mut dcbz_lines = HashSet::new();
        for _ in 0..200_000 {
            if let UopKind::Dcbz { addr } = t.next_uop().kind {
                dcbz_lines.insert(addr.0 >> 6);
            }
        }
        assert!(
            dcbz_lines.len() >= 64,
            "expected at least one full page of dcbz, saw {} lines",
            dcbz_lines.len()
        );
        // dcbz lines are page-pool lines, 64 consecutive per page.
        let base = AddressMap::new(0, 4, false).base(Segment::PagePool).0 >> 6;
        assert!(dcbz_lines.iter().all(|&l| l >= base));
    }

    #[test]
    fn spatial_locality_clusters_into_regions() {
        let mut t = WorkloadThread::new(private_spec(), 0, 4, 5);
        let mut prev_region = None;
        let mut same = 0u64;
        let mut total = 0u64;
        for _ in 0..100_000 {
            if let Some(a) = t.next_uop().kind.mem_addr() {
                let region = a.0 >> 9; // 512 B
                if prev_region == Some(region) {
                    same += 1;
                }
                prev_region = Some(region);
                total += 1;
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.5, "region locality too low: {frac:.3}");
    }

    #[test]
    fn pc_stays_in_code_footprint() {
        let mut t = WorkloadThread::new(private_spec(), 0, 4, 5);
        let base = AddressMap::new(0, 4, false).base(Segment::Code).0;
        for _ in 0..100_000 {
            let pc = t.next_uop().pc;
            assert!(
                pc >= base && pc < base + 32 * 1024 + 256,
                "pc escaped: {pc:#x}"
            );
        }
    }

    #[test]
    fn phases_cycle() {
        let mut spec = private_spec();
        spec.phases[0].instructions = 100;
        spec.phases.push(PhaseSpec {
            name: "second",
            instructions: 100,
            mem_fraction: 0.0,
            branch_fraction: 0.0,
            fp_fraction: 1.0,
            streams: vec![StreamSpec::private_scan(1.0, 4096, 0.0)],
            loop_length: 16,
            loop_iterations: 4,
            branch_noise: 0.0,
            dcbz_pages_per_kilo_instr: 0.0,
        });
        let mut t = WorkloadThread::new(spec, 0, 4, 2);
        // Run far enough to cycle through both phases several times and
        // observe FP ops (phase 2) as well as memory ops (phase 1).
        let mut saw_fp = false;
        let mut saw_mem = false;
        for _ in 0..2000 {
            match t.next_uop().kind {
                UopKind::FpAlu | UopKind::FpMult => saw_fp = true,
                k if k.is_mem() => saw_mem = true,
                _ => {}
            }
        }
        assert!(saw_fp && saw_mem);
    }
}
