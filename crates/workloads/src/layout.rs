//! Physical address-space layout shared by all synthetic benchmarks.
//!
//! Segments are placed far apart so they never alias in the caches, and
//! per-core private segments are disjoint. All addresses stay below 2^40,
//! matching the storage model of Table 2.

use cgct_cache::Addr;

/// Logical memory segments the generators draw addresses from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Instruction space. Shared by all cores for threaded workloads,
    /// per-core for multiprogrammed ones.
    Code,
    /// Per-core private data (heap/stack): never touched by other cores.
    PrivateHeap,
    /// Read-mostly shared data (e.g. the Raytrace scene).
    SharedReadOnly,
    /// Read-write shared data (grids, databases, Java heaps).
    SharedReadWrite,
    /// Small hot migratory structures: locks, counters, run queues.
    Migratory,
    /// Per-core pool of pages zeroed with `dcbz` before use.
    PagePool,
    /// Operating-system data touched in kernel mode: shared.
    Kernel,
    /// Heap whose allocations interleave across cores in 512-byte chunks
    /// (kernel slab / malloc arena behaviour): data is *logically*
    /// private, but physically adjacent to other cores' data, so regions
    /// larger than the chunk suffer false region-sharing.
    InterleavedHeap,
}

impl Segment {
    /// Whether addresses in this segment differ per core.
    pub fn is_private(self) -> bool {
        matches!(
            self,
            Segment::PrivateHeap | Segment::PagePool | Segment::InterleavedHeap
        )
    }
}

/// Resolves (segment, offset) pairs to physical addresses for one core.
///
/// # Examples
///
/// ```
/// use cgct_workloads::{AddressMap, Segment};
///
/// let m0 = AddressMap::new(0, 4, false);
/// let m1 = AddressMap::new(1, 4, false);
/// // Private heaps are disjoint across cores...
/// assert_ne!(m0.resolve(Segment::PrivateHeap, 0), m1.resolve(Segment::PrivateHeap, 0));
/// // ...while shared segments coincide.
/// assert_eq!(
///     m0.resolve(Segment::SharedReadWrite, 64),
///     m1.resolve(Segment::SharedReadWrite, 64)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    core: usize,
    total_cores: usize,
    per_core_code: bool,
}

/// Span reserved for each core's slice of a private segment (256 MB).
const PRIVATE_SPAN: u64 = 0x1000_0000;

/// Per-segment base offset that spreads segments across cache and RCA
/// sets. Without it, every segment base would be a large power of two and
/// all hot data would alias into the same low index sets of the 2-way
/// arrays, which real address layouts do not do. Offsets are page-aligned
/// and pairwise distinct modulo both the L2 index span (512 KB) and the
/// RCA index span (4 MB at 512 B regions).
fn spread(rank: u64) -> u64 {
    rank * 73 * 4096
}

impl AddressMap {
    /// Creates the map for `core` of `total_cores`. `per_core_code` gives
    /// each core its own code segment (multiprogrammed workloads).
    ///
    /// # Panics
    ///
    /// Panics if `core >= total_cores`.
    pub fn new(core: usize, total_cores: usize, per_core_code: bool) -> Self {
        assert!(core < total_cores, "core {core} out of {total_cores}");
        AddressMap {
            core,
            total_cores,
            per_core_code,
        }
    }

    /// Base address of `segment` for this core.
    pub fn base(&self, segment: Segment) -> Addr {
        let core = self.core as u64;
        let a = match segment {
            Segment::Code => {
                spread(0)
                    + if self.per_core_code {
                        0x00_1000_0000 + core * PRIVATE_SPAN
                    } else {
                        0x00_1000_0000
                    }
            }
            Segment::PrivateHeap => 0x10_0000_0000 + core * PRIVATE_SPAN + spread(1),
            Segment::SharedReadOnly => 0x20_0000_0000 + spread(2),
            Segment::SharedReadWrite => 0x30_0000_0000 + spread(3),
            Segment::Migratory => 0x40_0000_0000 + spread(4),
            Segment::PagePool => 0x50_0000_0000 + core * PRIVATE_SPAN + spread(5),
            Segment::Kernel => 0x60_0000_0000 + spread(6),
            Segment::InterleavedHeap => 0x70_0000_0000 + spread(7),
        };
        Addr(a)
    }

    /// Ownership chunk size of [`Segment::InterleavedHeap`]: one core's
    /// allocations are contiguous only within this many bytes.
    pub const INTERLEAVE_CHUNK: u64 = 512;

    /// The physical address `offset` bytes into this core's view of
    /// `segment`. For [`Segment::InterleavedHeap`] the logical offset is
    /// scattered into the core's 512-byte chunks of the shared arena.
    pub fn resolve(&self, segment: Segment, offset: u64) -> Addr {
        if segment == Segment::InterleavedHeap {
            let chunk = offset / Self::INTERLEAVE_CHUNK;
            let within = offset % Self::INTERLEAVE_CHUNK;
            let phys = (chunk * self.total_cores as u64 + self.core as u64)
                * Self::INTERLEAVE_CHUNK
                + within;
            return self.base(segment).offset(phys);
        }
        self.base(segment).offset(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_segments_are_disjoint_across_cores() {
        let maps: Vec<AddressMap> = (0..4).map(|c| AddressMap::new(c, 4, false)).collect();
        for seg in [Segment::PrivateHeap, Segment::PagePool] {
            for i in 0..4 {
                for j in 0..4 {
                    if i == j {
                        continue;
                    }
                    let a = maps[i].resolve(seg, 0).0;
                    let b = maps[j].resolve(seg, 0).0;
                    assert!(a.abs_diff(b) >= PRIVATE_SPAN, "{seg:?} cores {i},{j}");
                }
            }
        }
    }

    #[test]
    fn shared_segments_coincide() {
        let m0 = AddressMap::new(0, 2, false);
        let m1 = AddressMap::new(1, 2, false);
        for seg in [
            Segment::SharedReadOnly,
            Segment::SharedReadWrite,
            Segment::Migratory,
            Segment::Kernel,
            Segment::Code,
        ] {
            assert_eq!(m0.base(seg), m1.base(seg), "{seg:?}");
        }
    }

    #[test]
    fn per_core_code_separates_code() {
        let m0 = AddressMap::new(0, 2, true);
        let m1 = AddressMap::new(1, 2, true);
        assert_ne!(m0.base(Segment::Code), m1.base(Segment::Code));
    }

    #[test]
    fn segments_do_not_overlap() {
        let m = AddressMap::new(3, 4, true);
        let mut bases: Vec<u64> = [
            Segment::Code,
            Segment::PrivateHeap,
            Segment::SharedReadOnly,
            Segment::SharedReadWrite,
            Segment::Migratory,
            Segment::PagePool,
            Segment::Kernel,
        ]
        .iter()
        .map(|&s| m.base(s).0)
        .collect();
        bases.sort_unstable();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= PRIVATE_SPAN / 2, "segments too close: {w:?}");
        }
    }

    #[test]
    fn addresses_fit_in_40_bits_for_small_offsets() {
        let m = AddressMap::new(3, 4, false);
        for seg in [Segment::Kernel, Segment::PagePool] {
            assert!(m.resolve(seg, 0x0FFF_FFFF).0 < (1 << 40), "{seg:?}");
        }
    }

    #[test]
    fn privacy_classification() {
        assert!(Segment::PrivateHeap.is_private());
        assert!(Segment::PagePool.is_private());
        assert!(!Segment::Kernel.is_private());
        assert!(!Segment::Code.is_private());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_core_out_of_range() {
        let _ = AddressMap::new(4, 4, false);
    }

    #[test]
    fn interleaved_heap_is_logically_private_but_physically_adjacent() {
        let m0 = AddressMap::new(0, 4, false);
        let m1 = AddressMap::new(1, 4, false);
        // Logical offsets never collide across cores...
        for off in [0u64, 100, 512, 5000] {
            assert_ne!(
                m0.resolve(Segment::InterleavedHeap, off),
                m1.resolve(Segment::InterleavedHeap, off)
            );
        }
        // ...but core 1's chunk 0 sits right after core 0's chunk 0: the
        // two land in the same 1 KB region.
        let a = m0.resolve(Segment::InterleavedHeap, 0).0;
        let b = m1.resolve(Segment::InterleavedHeap, 0).0;
        assert_eq!(b - a, 512);
        assert_eq!(a >> 10, b >> 10, "same 1KB region");
        assert_ne!(a >> 9, b >> 9, "different 512B regions");
    }

    #[test]
    fn interleaved_chunks_preserve_spatial_locality_within_chunk() {
        let m = AddressMap::new(2, 4, false);
        let a = m.resolve(Segment::InterleavedHeap, 0).0;
        let b = m.resolve(Segment::InterleavedHeap, 511).0;
        assert_eq!(b - a, 511);
    }
}
