//! Power4-style hardware stream prefetcher (Table 3: 8 streams, 5-line
//! runahead).
//!
//! The prefetcher watches the L2 access stream. A miss to line `n`
//! followed by an access to `n ± 1` confirms an ascending/descending
//! stream; a confirmed stream keeps a prefetch frontier up to five lines
//! ahead of the demand pointer.

use cgct_cache::LineAddr;

/// A prefetch the engine wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line to prefetch.
    pub line: LineAddr,
    /// Fetch exclusive (stream established by store-intent accesses).
    pub exclusive: bool,
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next expected demand line.
    expect: LineAddr,
    /// +1 or -1.
    direction: i64,
    /// How far ahead of the demand pointer we have prefetched.
    runahead: u64,
    /// Confirmed (second sequential access seen).
    confirmed: bool,
    /// Whether the stream's accesses carry store intent.
    exclusive: bool,
    /// LRU stamp.
    last_use: u64,
}

/// The stream prefetch engine for one processor.
///
/// # Examples
///
/// ```
/// use cgct_cpu::StreamPrefetcher;
/// use cgct_cache::LineAddr;
///
/// let mut pf = StreamPrefetcher::paper_default();
/// assert!(pf.on_miss(LineAddr(100), false).is_empty()); // allocates a stream
/// let reqs = pf.on_miss(LineAddr(101), false);          // confirms it
/// assert_eq!(reqs.len(), 5);                            // 5-line runahead
/// assert_eq!(reqs[0].line, LineAddr(102));
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    runahead: u64,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates an engine with `max_streams` stream registers and a
    /// `runahead`-line frontier.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(max_streams: usize, runahead: u64) -> Self {
        assert!(
            max_streams > 0 && runahead > 0,
            "prefetcher needs streams and runahead"
        );
        StreamPrefetcher {
            streams: Vec::with_capacity(max_streams),
            max_streams,
            runahead,
            clock: 0,
            issued: 0,
        }
    }

    /// Table 3: 8 streams, 5-line runahead.
    pub fn paper_default() -> Self {
        StreamPrefetcher::new(8, 5)
    }

    /// Reports a demand L2 access that missed; returns prefetches to issue.
    ///
    /// `store_intent` marks accesses that will be written, making any
    /// stream they confirm prefetch exclusive copies.
    pub fn on_miss(&mut self, line: LineAddr, store_intent: bool) -> Vec<PrefetchRequest> {
        self.clock += 1;
        let clock = self.clock;
        // Does this access continue an existing stream?
        if let Some(s) = self.streams.iter_mut().find(|s| s.expect == line) {
            s.confirmed = true;
            s.exclusive |= store_intent;
            s.last_use = clock;
            // Streams stop at the edge of the address space (real
            // prefetchers stop at physical-memory boundaries).
            let Some(next) = line.0.checked_add_signed(s.direction) else {
                s.expect = line; // dead stream: re-confirming is harmless
                return Vec::new();
            };
            s.expect = LineAddr(next);
            // The demand pointer advanced: top the frontier back up.
            let deficit = self.runahead - (self.runahead.min(s.runahead.saturating_sub(1)));
            s.runahead = self.runahead;
            let direction = s.direction;
            let exclusive = s.exclusive;
            let mut out = Vec::with_capacity(deficit as usize);
            for k in 0..deficit {
                let ahead = (self.runahead - deficit + k + 1) as i64;
                let Some(target) = line.0.checked_add_signed(direction * ahead) else {
                    continue; // never prefetch past the address space
                };
                out.push(PrefetchRequest {
                    line: LineAddr(target),
                    exclusive,
                });
            }
            self.issued += out.len() as u64;
            return out;
        }
        // New candidate streams in both directions (where they fit).
        self.allocate(line, 1, store_intent, clock);
        self.allocate(line, -1, store_intent, clock);
        Vec::new()
    }

    fn allocate(&mut self, line: LineAddr, direction: i64, exclusive: bool, clock: u64) {
        let Some(expect) = line.0.checked_add_signed(direction) else {
            return; // a stream cannot run off the address space
        };
        let stream = Stream {
            expect: LineAddr(expect),
            direction,
            runahead: 0,
            confirmed: false,
            exclusive,
            last_use: clock,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(stream);
            return;
        }
        // Replace the LRU unconfirmed stream; confirmed streams are
        // protected unless everything is confirmed.
        let victim = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.confirmed)
            .min_by_key(|(_, s)| s.last_use)
            .or_else(|| {
                self.streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_use)
            })
            .map(|(i, _)| i)
            // cgct-lint: allow(D006) streams is non-empty here: the miss above either found or just pushed a stream
            .expect("streams is non-empty");
        self.streams[victim] = stream;
    }

    /// Number of active stream registers.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Snapshots the stream registers and statistics.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("streams", self.streams.snap()),
            ("clock", Json::u64(self.clock)),
            ("issued", Json::u64(self.issued)),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into an
    /// engine of the same configuration.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or more streams than this engine holds.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::unsnap_field;
        let streams: Vec<Stream> = unsnap_field(v, "streams")?;
        if streams.len() > self.max_streams {
            return Err("more streams than registers".to_string());
        }
        self.streams = streams;
        self.clock = unsnap_field(v, "clock")?;
        self.issued = unsnap_field(v, "issued")?;
        Ok(())
    }
}

impl cgct_sim::Snap for Stream {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("e", self.expect.snap()),
            ("d", Json::i64(self.direction)),
            ("r", Json::u64(self.runahead)),
            ("c", Json::Bool(self.confirmed)),
            ("x", Json::Bool(self.exclusive)),
            ("u", Json::u64(self.last_use)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        let direction: i64 = unsnap_field(v, "d")?;
        if direction != 1 && direction != -1 {
            return Err(format!("stream direction must be ±1, got {direction}"));
        }
        Ok(Stream {
            expect: unsnap_field(v, "e")?,
            direction,
            runahead: unsnap_field(v, "r")?,
            confirmed: unsnap_field(v, "c")?,
            exclusive: unsnap_field(v, "x")?,
            last_use: unsnap_field(v, "u")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_ascending_stream_and_runs_ahead() {
        let mut pf = StreamPrefetcher::new(4, 5);
        assert!(pf.on_miss(LineAddr(10), false).is_empty());
        let reqs = pf.on_miss(LineAddr(11), false);
        let lines: Vec<u64> = reqs.iter().map(|r| r.line.0).collect();
        assert_eq!(lines, vec![12, 13, 14, 15, 16]);
        // Continued demand keeps the frontier one batch ahead.
        let reqs = pf.on_miss(LineAddr(12), false);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].line, LineAddr(17));
    }

    #[test]
    fn confirms_descending_stream() {
        let mut pf = StreamPrefetcher::new(4, 3);
        pf.on_miss(LineAddr(100), false);
        let reqs = pf.on_miss(LineAddr(99), false);
        let lines: Vec<u64> = reqs.iter().map(|r| r.line.0).collect();
        assert_eq!(lines, vec![98, 97, 96]);
    }

    #[test]
    fn store_intent_makes_stream_exclusive() {
        let mut pf = StreamPrefetcher::new(4, 2);
        pf.on_miss(LineAddr(50), true);
        let reqs = pf.on_miss(LineAddr(51), false);
        assert!(reqs.iter().all(|r| r.exclusive));
    }

    #[test]
    fn random_misses_prefetch_nothing() {
        let mut pf = StreamPrefetcher::new(8, 5);
        for line in [3u64, 907, 12, 555, 78, 2001] {
            assert!(pf.on_miss(LineAddr(line), false).is_empty());
        }
    }

    #[test]
    fn stream_capacity_bounded_with_confirmed_protected() {
        let mut pf = StreamPrefetcher::new(4, 2);
        // Confirm one stream.
        pf.on_miss(LineAddr(10), false);
        pf.on_miss(LineAddr(11), false);
        // Flood with unrelated misses.
        for l in 0..20 {
            pf.on_miss(LineAddr(1000 + l * 100), false);
        }
        assert_eq!(pf.active_streams(), 4);
        // The confirmed stream survived the flood.
        let reqs = pf.on_miss(LineAddr(12), false);
        assert!(!reqs.is_empty());
    }

    #[test]
    fn descending_stream_stops_at_line_zero() {
        let mut pf = StreamPrefetcher::new(4, 5);
        // Descending toward zero: candidates allocate, but no prefetch
        // may ever wrap below line 0.
        pf.on_miss(LineAddr(2), false);
        let reqs = pf.on_miss(LineAddr(1), false);
        assert!(
            reqs.iter().all(|r| r.line.0 < 3),
            "wrapped prefetches: {reqs:?}"
        );
        let reqs = pf.on_miss(LineAddr(0), false);
        assert!(
            reqs.iter().all(|r| r.line.0 < 3),
            "wrapped prefetches at zero: {reqs:?}"
        );
        // Nothing past this point can wrap either.
        for r in pf.on_miss(LineAddr(0), false) {
            assert!(r.line.0 < (1 << 40));
        }
    }

    #[test]
    fn ascending_stream_stops_at_address_top() {
        let mut pf = StreamPrefetcher::new(4, 5);
        let top = LineAddr(u64::MAX - 1);
        pf.on_miss(top, false);
        let reqs = pf.on_miss(LineAddr(u64::MAX), false);
        // Only the single in-range line may be prefetched; no wraps.
        assert!(reqs.iter().all(|r| r.line.0 > top.0), "{reqs:?}");
    }

    #[test]
    fn issued_counter() {
        let mut pf = StreamPrefetcher::new(4, 5);
        pf.on_miss(LineAddr(10), false);
        pf.on_miss(LineAddr(11), false);
        assert_eq!(pf.issued(), 5);
    }
}
