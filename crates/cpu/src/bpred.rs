//! Branch prediction: 16K-entry gshare, 4K-set 4-way BTB, 8-entry
//! return-address stack (Table 3).

use crate::uop::BranchKind;

/// Combined branch prediction unit.
///
/// # Examples
///
/// ```
/// use cgct_cpu::{BranchPredictor, BranchKind};
///
/// let mut bp = BranchPredictor::paper_default();
/// // Train a strongly taken branch until the global history settles.
/// for _ in 0..50 {
///     let _ = bp.predict_and_update(0x4000, BranchKind::Conditional, true);
/// }
/// assert!(bp.predict_and_update(0x4000, BranchKind::Conditional, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    /// Global history register.
    history: u64,
    history_mask: u64,
    /// BTB: tag per entry (valid targets assumed once tagged).
    btb: Vec<u64>,
    btb_sets: usize,
    btb_ways: usize,
    /// Return-address stack of call-site PCs.
    ras: Vec<u64>,
    ras_cap: usize,
    /// Statistics.
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `pht_entries` gshare counters (power of
    /// two), a `btb_sets`×`btb_ways` BTB, and a `ras_cap`-entry RAS.
    ///
    /// # Panics
    ///
    /// Panics if `pht_entries` or `btb_sets` is not a power of two.
    pub fn new(pht_entries: usize, btb_sets: usize, btb_ways: usize, ras_cap: usize) -> Self {
        assert!(pht_entries.is_power_of_two(), "PHT must be a power of two");
        assert!(
            btb_sets.is_power_of_two(),
            "BTB sets must be a power of two"
        );
        BranchPredictor {
            pht: vec![1; pht_entries], // weakly not-taken
            history: 0,
            history_mask: (pht_entries - 1) as u64,
            btb: vec![u64::MAX; btb_sets * btb_ways],
            btb_sets,
            btb_ways,
            ras: Vec::with_capacity(ras_cap),
            ras_cap,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Table 3 parameters: 16K-entry gshare, 4K-set 4-way BTB, 8-entry RAS.
    pub fn paper_default() -> Self {
        BranchPredictor::new(16 * 1024, 4 * 1024, 4, 8)
    }

    fn pht_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.history_mask) as usize
    }

    fn btb_lookup_insert(&mut self, pc: u64) -> bool {
        let set = ((pc >> 2) as usize) & (self.btb_sets - 1);
        let ways = &mut self.btb[set * self.btb_ways..(set + 1) * self.btb_ways];
        if let Some(pos) = ways.iter().position(|&t| t == pc) {
            // Move to MRU.
            ways[..=pos].rotate_right(1);
            return true;
        }
        // Miss: install at MRU, shifting others toward LRU.
        ways.rotate_right(1);
        ways[0] = pc;
        false
    }

    /// Predicts the branch at `pc`, updates all structures with the actual
    /// outcome, and returns whether the prediction (direction *and*
    /// target availability) was correct.
    pub fn predict_and_update(&mut self, pc: u64, kind: BranchKind, taken: bool) -> bool {
        self.predictions += 1;
        let correct = match kind {
            BranchKind::Conditional => {
                let idx = self.pht_index(pc);
                let predicted_taken = self.pht[idx] >= 2;
                // Update the counter and history.
                if taken {
                    self.pht[idx] = (self.pht[idx] + 1).min(3);
                } else {
                    self.pht[idx] = self.pht[idx].saturating_sub(1);
                }
                self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
                let target_known = if taken {
                    self.btb_lookup_insert(pc)
                } else {
                    true
                };
                predicted_taken == taken && target_known
            }
            BranchKind::Call => {
                if self.ras.len() == self.ras_cap {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 4);
                // Calls are direct: correct when the BTB knows the target.
                self.btb_lookup_insert(pc)
            }
            BranchKind::Return => {
                // Correct when the RAS top matches the call site's return.
                self.ras.pop().is_some()
            }
        };
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in [0, 1].
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Snapshots every predictor table and the statistics.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("pht", self.pht.snap()),
            ("history", Json::u64(self.history)),
            ("btb", self.btb.snap()),
            ("ras", self.ras.snap()),
            ("predictions", Json::u64(self.predictions)),
            ("mispredictions", Json::u64(self.mispredictions)),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into a
    /// predictor of the same configuration.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a table-size mismatch.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::unsnap_field;
        let pht: Vec<u8> = unsnap_field(v, "pht")?;
        let btb: Vec<u64> = unsnap_field(v, "btb")?;
        let ras: Vec<u64> = unsnap_field(v, "ras")?;
        if pht.len() != self.pht.len() || btb.len() != self.btb.len() {
            return Err("branch-predictor table size mismatch".to_string());
        }
        if ras.len() > self.ras_cap {
            return Err("RAS overflows its capacity".to_string());
        }
        self.pht = pht;
        self.btb = btb;
        self.ras = ras;
        self.history = unsnap_field::<u64>(v, "history")? & self.history_mask;
        self.predictions = unsnap_field(v, "predictions")?;
        self.mispredictions = unsnap_field(v, "mispredictions")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = BranchPredictor::new(1024, 64, 2, 4);
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_update(0x100, BranchKind::Conditional, true) {
                correct += 1;
            }
        }
        // The global history register shifts on every outcome, so the
        // first ~log2(PHT) visits each train a fresh counter; after that
        // the branch predicts perfectly.
        assert!(correct >= 85, "only {correct}/100 correct");
    }

    #[test]
    fn learns_an_alternating_branch_via_history() {
        let mut bp = BranchPredictor::new(1024, 64, 2, 4);
        let mut correct_late = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let ok = bp.predict_and_update(0x200, BranchKind::Conditional, taken);
            if i >= 100 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late >= 90, "only {correct_late}/100 correct late");
    }

    #[test]
    fn returns_match_calls() {
        let mut bp = BranchPredictor::new(256, 16, 2, 8);
        bp.predict_and_update(0x500, BranchKind::Call, true);
        assert!(bp.predict_and_update(0x700, BranchKind::Return, true));
        // Underflowed RAS mispredicts.
        assert!(!bp.predict_and_update(0x704, BranchKind::Return, true));
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchPredictor::new(256, 16, 2, 2);
        for i in 0..3 {
            bp.predict_and_update(0x100 * (i + 1), BranchKind::Call, true);
        }
        // Two returns pop the two newest frames; the third underflows.
        assert!(bp.predict_and_update(0x900, BranchKind::Return, true));
        assert!(bp.predict_and_update(0x904, BranchKind::Return, true));
        assert!(!bp.predict_and_update(0x908, BranchKind::Return, true));
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = BranchPredictor::new(256, 16, 2, 2);
        for _ in 0..100 {
            bp.predict_and_update(0x40, BranchKind::Conditional, true);
        }
        assert_eq!(bp.predictions(), 100);
        assert!(bp.misprediction_rate() < 0.3);
    }

    #[test]
    fn first_taken_encounter_misses_btb() {
        let mut bp = BranchPredictor::new(256, 16, 2, 2);
        // Even if direction luck is right, the unknown target mispredicts.
        assert!(!bp.predict_and_update(0x44, BranchKind::Conditional, true));
    }
}
