//! Out-of-order processor core model for the CGCT reproduction.
//!
//! Models the Table 3 core: 4-wide fetch/issue/commit, a 16-entry fetch
//! queue, 15-stage pipeline, gshare + BTB + return-address-stack branch
//! prediction, a 64-entry ROB, a 32-entry issue window, a 32-entry
//! load/store queue, one memory port, and the paper's two prefetchers
//! (Power4-style stream prefetching and MIPS R10000-style exclusive
//! prefetching — the latter via the `store_intent` hint on loads).
//!
//! The core is *trace-driven*: a [`UopSource`] supplies a dynamic
//! instruction stream (the synthetic workloads), and a [`MemoryInterface`]
//! — implemented by the system crate over the caches, RCA, and
//! interconnect — answers each instruction fetch and data access with its
//! completion time. Wrong-path instructions are not simulated; a branch
//! misprediction costs the pipeline-refill bubble.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod prefetch;
pub mod uop;

pub use bpred::BranchPredictor;
pub use config::CoreConfig;
pub use core::{Core, CoreStats, MemAttempt, MemoryInterface, Wakeup};
pub use prefetch::{PrefetchRequest, StreamPrefetcher};
pub use uop::{BranchKind, Uop, UopKind, UopSource};
