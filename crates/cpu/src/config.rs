//! Core configuration (Table 3 defaults).

/// Out-of-order core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Fetch queue capacity.
    pub fetch_queue: usize,
    /// Decode/dispatch width.
    pub dispatch_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Issue window: how many un-issued ROB entries are candidates.
    pub issue_window: usize,
    /// Reorder buffer capacity.
    pub rob: usize,
    /// Load/store queue capacity (memory ops in flight in the ROB).
    pub lsq: usize,
    /// Post-commit store buffer capacity.
    pub store_buffer: usize,
    /// Committed stores allowed in flight to memory simultaneously
    /// (write MSHRs). Stores still *issue* in order.
    pub store_mshrs: usize,
    /// Outstanding load-miss lines (load MSHRs): loads to a line already
    /// in flight merge; loads needing a new line stall when the file is
    /// full.
    pub load_mshrs: usize,
    /// Pipeline refill penalty after a branch misprediction, in cycles
    /// (15-stage pipeline).
    pub mispredict_penalty: u64,
    /// Integer ALUs.
    pub int_alu: usize,
    /// Integer multipliers.
    pub int_mult: usize,
    /// FP ALUs.
    pub fp_alu: usize,
    /// FP multipliers.
    pub fp_mult: usize,
    /// Memory ports (loads issued per cycle).
    pub mem_ports: usize,
    /// Integer multiply latency.
    pub int_mult_latency: u64,
    /// FP operation latency.
    pub fp_latency: u64,
}

impl CoreConfig {
    /// Table 3: 4/4/4-wide, 16-entry fetch queue, 32-entry window,
    /// 64-entry ROB, 32-entry LSQ, 2 int ALU / 1 int mult / 1 FP ALU /
    /// 1 FP mult, 1 memory port, 15-stage pipeline.
    pub fn paper_default() -> Self {
        CoreConfig {
            fetch_width: 4,
            fetch_queue: 16,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            issue_window: 32,
            rob: 64,
            lsq: 32,
            store_buffer: 16,
            store_mshrs: 4,
            load_mshrs: 16,
            mispredict_penalty: 13,
            int_alu: 2,
            int_mult: 1,
            fp_alu: 1,
            fp_mult: 1,
            mem_ports: 1,
            int_mult_latency: 7,
            fp_latency: 4,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = CoreConfig::paper_default();
        assert_eq!((c.fetch_width, c.issue_width, c.commit_width), (4, 4, 4));
        assert_eq!(c.fetch_queue, 16);
        assert_eq!(c.issue_window, 32);
        assert_eq!(c.rob, 64);
        assert_eq!(c.lsq, 32);
        assert_eq!((c.int_alu, c.int_mult, c.fp_alu, c.fp_mult), (2, 1, 1, 1));
        assert_eq!(c.mem_ports, 1);
    }
}
