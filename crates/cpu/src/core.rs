//! The out-of-order core model.
//!
//! A trace-driven pipeline: fetch (with instruction-cache and branch-
//! misprediction stalls), dispatch into a reorder buffer, out-of-order
//! issue limited by an issue window, functional units and one memory
//! port, in-order commit, and a post-commit store buffer that drains
//! stores (and `dcbz` ops) to the memory system in order.
//!
//! The memory system is abstracted behind [`MemoryInterface`]: every
//! access returns its completion time synchronously, which keeps the
//! whole multiprocessor simulation deterministic and fast while still
//! letting misses overlap (memory-level parallelism) inside the core.

use crate::bpred::BranchPredictor;
use crate::config::CoreConfig;
use crate::uop::{Uop, UopKind, UopSource};
use cgct_cache::{Addr, LineAddr, MshrFile};
use cgct_sim::Cycle;
use std::collections::VecDeque;

/// Outcome of a non-blocking memory attempt (`try_*` on
/// [`MemoryInterface`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAttempt {
    /// The access was accepted; it completes at the given cycle.
    Done(Cycle),
    /// The memory system cannot answer mid-epoch (conservative parallel
    /// mode, DESIGN.md "Concurrency & determinism model"): nothing was
    /// allocated or modified on behalf of the access, and the core must
    /// re-attempt it no earlier than the given cycle.
    Blocked(Cycle),
}

/// The memory hierarchy as seen by one core. All methods return the
/// completion time of the access (`now + 1` for an L1 hit).
///
/// The `try_*` variants let an implementation *defer* an access instead
/// of answering synchronously — the epoch-parallel engine answers L1
/// hits immediately and queues everything else for its serial coherence
/// phase. The defaults delegate to the blocking methods and never
/// block, so the legacy single-threaded engine (and every test mock)
/// behaves exactly as before; the core only ever calls `try_*`.
pub trait MemoryInterface {
    /// Fetches the instruction-cache line containing `addr`.
    fn ifetch(&mut self, now: Cycle, addr: Addr) -> Cycle;
    /// Data load. `store_intent` requests an exclusive copy (R10000-style
    /// exclusive prefetching).
    fn load(&mut self, now: Cycle, addr: Addr, store_intent: bool) -> Cycle;
    /// Data store (write permission + write).
    fn store(&mut self, now: Cycle, addr: Addr) -> Cycle;
    /// Data-cache-block-zero.
    fn dcbz(&mut self, now: Cycle, addr: Addr) -> Cycle;
    /// Non-blocking [`MemoryInterface::ifetch`].
    fn try_ifetch(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        MemAttempt::Done(self.ifetch(now, addr))
    }
    /// Non-blocking [`MemoryInterface::load`].
    fn try_load(&mut self, now: Cycle, addr: Addr, store_intent: bool) -> MemAttempt {
        MemAttempt::Done(self.load(now, addr, store_intent))
    }
    /// Non-blocking [`MemoryInterface::store`].
    fn try_store(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        MemAttempt::Done(self.store(now, addr))
    }
    /// Non-blocking [`MemoryInterface::dcbz`].
    fn try_dcbz(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        MemAttempt::Done(self.dcbz(now, addr))
    }
}

/// The earliest cycle at which a core might make progress again.
///
/// Returned by [`Core::tick`]. The contract: ticking the core at any
/// cycle strictly before `self.0` is an observational no-op — it
/// commits nothing, issues nothing, drains nothing, fetches nothing,
/// and makes no [`MemoryInterface`] call — so a driver may skip
/// straight to `self.0` without changing any architectural outcome.
/// The value may be conservative (earlier than the real next event);
/// early ticks are merely wasted work, never wrong. Per-tick stall
/// statistics ([`CoreStats::fetch_stall_cycles`],
/// [`CoreStats::store_buffer_stall_cycles`], [`CoreStats::cycles`])
/// count *executed* ticks only, so they shrink under a skipping
/// driver; they are diagnostics, not architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wakeup(pub Cycle);

/// Aggregate core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles this core was actually ticked (equals wall-clock cycles
    /// only under a non-skipping driver).
    pub cycles: u64,
    /// Cycles fetch was stalled (icache miss, misprediction redirect).
    pub fetch_stall_cycles: u64,
    /// Cycles commit was blocked by a full store buffer.
    pub store_buffer_stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// `dcbz` ops committed.
    pub dcbz_ops: u64,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    uop: Uop,
    issued: bool,
    done_at: Cycle,
    /// This entry is a mispredicted branch: fetch resumes a pipeline
    /// refill after it resolves.
    redirect: bool,
    /// Functional-unit class (index into the issue stage's availability
    /// array), precomputed at dispatch so the issue scan — which may
    /// revisit a blocked entry many times — never re-derives it from
    /// the uop kind.
    fu_class: u8,
}

/// Functional-unit classes, in the order the issue stage's availability
/// array is laid out: int ALU (also branches), int mult, FP ALU, FP
/// mult, memory port.
const FU_INT_ALU: u8 = 0;
const FU_INT_MULT: u8 = 1;
const FU_FP_ALU: u8 = 2;
const FU_FP_MULT: u8 = 3;
const FU_MEM: u8 = 4;

fn fu_class_of(kind: UopKind) -> u8 {
    match kind {
        UopKind::IntAlu | UopKind::Branch { .. } => FU_INT_ALU,
        UopKind::IntMult => FU_INT_MULT,
        UopKind::FpAlu => FU_FP_ALU,
        UopKind::FpMult => FU_FP_MULT,
        UopKind::Load { .. } | UopKind::Store { .. } | UopKind::Dcbz { .. } => FU_MEM,
    }
}

#[derive(Debug, Clone, Copy)]
struct FetchedUop {
    uop: Uop,
    redirect: bool,
}

#[derive(Debug, Clone, Copy)]
enum StoreKind {
    Store,
    Dcbz,
}

/// One out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    bpred: BranchPredictor,
    fetch_queue: VecDeque<FetchedUop>,
    pending_fetch: Option<FetchedUop>,
    current_fetch_line: Option<u64>,
    fetch_line_ready: Cycle,
    /// Mispredicted branches in flight; fetch stalls while non-zero.
    redirects_in_flight: usize,
    fetch_stall_until: Cycle,
    /// Reorder buffer as a power-of-two ring indexed by `seq & rob_mask`.
    /// Valid entries are exactly `head_seq..next_seq`; producer lookups
    /// and the issue scan become direct slice indexing instead of deque
    /// walks.
    rob: Vec<RobEntry>,
    rob_mask: u64,
    head_seq: u64,
    next_seq: u64,
    /// Seqs of entries in `head_seq..next_seq` not yet issued, in
    /// ascending order (dispatch appends, issue removes from anywhere).
    /// The issue stage and `next_event` walk this list instead of the
    /// ROB, so their cost scales with the *unissued* population — a
    /// handful in steady flow — rather than with ROB occupancy, which
    /// is mostly issued entries waiting to commit.
    unissued_seqs: Vec<u64>,
    lsq_occupancy: usize,
    store_buffer: VecDeque<(StoreKind, Addr)>,
    stores_in_flight: Vec<Cycle>,
    /// Outstanding load-miss lines, keyed by line, carrying the shared
    /// completion time. Bounds load-level parallelism and merges
    /// secondary misses onto the primary's fill.
    load_mshrs: MshrFile<Cycle>,
    /// Earliest primary fill among `load_mshrs` (`u64::MAX` when none):
    /// the retire stage scans the file only when a fill is actually due,
    /// and `next_event` reads this instead of re-deriving the minimum.
    earliest_fill: u64,
    /// Optional trace sink for MSHR alloc/merge events, tagged with
    /// this core's id. `None` (the default) records nothing and is the
    /// zero-cost path; the sink never influences core behaviour. `Send`
    /// so cores can migrate across epoch-engine workers.
    trace: Option<(u8, Box<dyn cgct_trace::TraceSink + Send>)>,
    /// Earliest cycle a [`MemAttempt::Blocked`] load may be re-issued
    /// (epoch engine only; stays in the past under the legacy engine).
    issue_retry_at: Cycle,
    /// Earliest cycle the store buffer's blocked front entry may be
    /// re-attempted (epoch engine only).
    store_retry_at: Cycle,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("committed", &self.stats.committed)
            .field("rob_occupancy", &self.rob_len())
            .field("fetch_queue", &self.fetch_queue.len())
            .finish()
    }
}

impl Core {
    /// Creates a core with the given configuration and a paper-default
    /// branch predictor.
    pub fn new(cfg: CoreConfig) -> Self {
        let ring = cfg.rob.next_power_of_two().max(1);
        let placeholder = RobEntry {
            uop: Uop::simple(0, UopKind::IntAlu),
            issued: false,
            done_at: Cycle::ZERO,
            redirect: false,
            fu_class: FU_INT_ALU,
        };
        Core {
            cfg,
            bpred: BranchPredictor::paper_default(),
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue + 1),
            pending_fetch: None,
            current_fetch_line: None,
            fetch_line_ready: Cycle::ZERO,
            redirects_in_flight: 0,
            fetch_stall_until: Cycle::ZERO,
            rob: vec![placeholder; ring],
            rob_mask: ring as u64 - 1,
            head_seq: 0,
            next_seq: 0,
            unissued_seqs: Vec::with_capacity(cfg.rob),
            lsq_occupancy: 0,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer + 1),
            stores_in_flight: Vec::with_capacity(cfg.store_mshrs + 1),
            load_mshrs: MshrFile::new(cfg.load_mshrs),
            earliest_fill: u64::MAX,
            trace: None,
            issue_retry_at: Cycle::ZERO,
            store_retry_at: Cycle::ZERO,
            stats: CoreStats::default(),
        }
    }

    /// Installs a trace sink; MSHR alloc/merge events are recorded to
    /// it tagged with `core_id`.
    pub fn set_trace(&mut self, core_id: u8, sink: Box<dyn cgct_trace::TraceSink + Send>) {
        self.trace = Some((core_id, sink));
    }

    /// Removes any installed trace sink (tracing off).
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    /// Collected statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// The branch predictor (for misprediction statistics).
    pub fn branch_predictor(&self) -> &BranchPredictor {
        &self.bpred
    }

    fn rob_len(&self) -> usize {
        (self.next_seq - self.head_seq) as usize
    }

    #[inline]
    fn rob_at(&self, seq: u64) -> &RobEntry {
        &self.rob[(seq & self.rob_mask) as usize]
    }

    /// Whether all buffered work (ROB + store buffer) has drained.
    pub fn quiesced(&self, now: Cycle) -> bool {
        self.head_seq == self.next_seq
            && self.store_buffer.is_empty()
            && self.stores_in_flight.iter().all(|&t| t <= now)
    }

    /// Advances the core by one cycle: commit, issue, dispatch, fetch
    /// (reverse pipeline order so each instruction spends at least a cycle
    /// per stage). Returns the [`Wakeup`] cycle: if any stage made
    /// progress this tick, `now + 1`; otherwise the earliest pending
    /// completion event (fill arrival, store retirement, fetch-line
    /// ready, redirect refill), before which every tick would be a
    /// no-op.
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemoryInterface,
        src: &mut dyn UopSource,
    ) -> Wakeup {
        self.stats.cycles += 1;
        self.retire_load_mshrs(now);
        self.drain_store_buffer(now, mem);
        let committed = self.commit(now);
        let issue_force = self.issue(now, mem);
        let dispatched = self.dispatch();
        let fetched = self.fetch(now, mem, src);
        // A stage forces a `now + 1` wakeup only when it will have work
        // next cycle that no recorded completion event covers:
        //   - fetch consumed the stream and may consume more (stalls are
        //     covered by `fetch_line_ready` / `fetch_stall_until`);
        //   - dispatch moved uops into the ROB — they may issue next
        //     cycle (their producers can already be complete);
        //   - issue was cut short by per-cycle limits (functional units,
        //     issue width, issue window) that reset next cycle — see
        //     [`Core::issue`]; producer / MSHR stalls instead resolve at
        //     completion times `next_event` already tracks;
        //   - commit exhausted its width with work left (a store-buffer
        //     or head-not-done block resolves at a recorded event);
        //   - the store buffer holds entries (pushed by commit after the
        //     drain stage ran) that a free write MSHR can accept.
        // Everything else a stalled core waits for — fills, store
        // retirements, fetch-line arrival, redirect refill — completes
        // at a cycle `next_event` returns.
        // Fetch continues next cycle only if it ran to its width: queue
        // space left and neither stall timer armed (an icache stall
        // recorded here always reaches past `now + 1`).
        let fetch_force = fetched
            && self.redirects_in_flight == 0
            && self.fetch_line_ready <= now + 1
            && self.fetch_queue.len() < self.cfg.fetch_queue;
        // Dispatch has work next cycle if uops wait (including ones fetch
        // pushed after dispatch ran) and the ROB/LSQ can take the front.
        let can_dispatch_next = self.rob_len() < self.cfg.rob
            && match self.fetch_queue.front() {
                Some(f) => !(f.uop.kind.is_mem() && self.lsq_occupancy >= self.cfg.lsq),
                None => false,
            };
        let force = fetch_force
            || dispatched > 0
            || can_dispatch_next
            || issue_force
            || committed >= self.cfg.commit_width as u64
            || (!self.store_buffer.is_empty()
                && self.stores_in_flight.len() < self.cfg.store_mshrs
                // A buffer whose front was deferred mid-epoch busy-waits
                // on `store_retry_at` (a `next_event` candidate), not on
                // every cycle.
                && self.store_retry_at <= now);
        if force {
            return Wakeup(now + 1);
        }
        self.next_event(now)
    }

    /// The earliest cycle after `now` at which a fully-stalled core can
    /// change state. Sound because every stall in this model resolves at
    /// a completion time that is already recorded somewhere in the core:
    /// issued ROB entries (`done_at` gates both commit and dependent
    /// issue, and redirect resolution), in-flight stores (gate the store
    /// buffer and, through it, commit), load MSHRs (gate load issue when
    /// the file is full), and the two fetch stalls. If no event is
    /// pending the conservative answer `now + 1` keeps the driver live.
    fn next_event(&mut self, now: Cycle) -> Wakeup {
        let mut wake = u64::MAX;
        // Commit is enabled by the head's completion. (A head that is
        // already complete but store-buffer-blocked waits on a store
        // retirement, picked up below — a full buffer implies in-flight
        // stores.) A still-unissued head is reached through the issue
        // events next.
        if self.head_seq != self.next_seq {
            let h = self.rob_at(self.head_seq);
            if h.issued && h.done_at > now {
                wake = wake.min(h.done_at.0);
            }
        }
        // Issue is enabled when the producer of an unissued entry inside
        // the issue window completes. Producers that are themselves
        // unissued sit earlier in the same window, so their own
        // producers' events cover them transitively; producers already
        // complete mean the entry was schedulable this tick and the
        // forcing rules in `tick` handled it.
        for (scanned, &seq) in self.unissued_seqs.iter().enumerate() {
            if scanned >= self.cfg.issue_window {
                break;
            }
            let e = self.rob_at(seq);
            if e.uop.dep_dist == 0 {
                continue;
            }
            let Some(producer_seq) = seq.checked_sub(e.uop.dep_dist as u64) else {
                continue;
            };
            if producer_seq < self.head_seq {
                continue;
            }
            let p = self.rob_at(producer_seq);
            if p.issued && p.done_at > now {
                wake = wake.min(p.done_at.0);
            }
        }
        // A fill retirement frees a load MSHR, unblocking an MSHR-full
        // load in the window (these mostly coincide with producer
        // completions above). The retire stage already ran at `now`, so
        // the cached minimum is either in the future or MAX.
        wake = wake.min(self.earliest_fill);
        // Store retirements matter only while the buffer has a backlog
        // to drain (which also covers a store-buffer-blocked commit).
        if !self.store_buffer.is_empty() {
            for &t in &self.stores_in_flight {
                if t > now {
                    wake = wake.min(t.0);
                }
            }
            if self.store_retry_at > now {
                wake = wake.min(self.store_retry_at.0);
            }
        }
        // A load deferred mid-epoch re-issues at the retry time (epoch
        // engine only; under the legacy engine this never arms).
        if !self.unissued_seqs.is_empty() && self.issue_retry_at > now {
            wake = wake.min(self.issue_retry_at.0);
        }
        // Fetch stalls matter only when fetch could otherwise run: queue
        // space and no unresolved redirect (a redirect resolves through
        // the issue events above, which set `fetch_stall_until` anew).
        if self.redirects_in_flight == 0 && self.fetch_queue.len() < self.cfg.fetch_queue {
            if self.fetch_line_ready > now {
                wake = wake.min(self.fetch_line_ready.0);
            }
            if self.fetch_stall_until > now {
                wake = wake.min(self.fetch_stall_until.0);
            }
        }
        if wake == u64::MAX {
            Wakeup(now + 1)
        } else {
            Wakeup(Cycle(wake))
        }
    }

    fn retire_load_mshrs(&mut self, now: Cycle) -> bool {
        // Free registers whose fills have arrived. The cached minimum
        // makes the no-fill-due case (the vast majority of ticks) a
        // single compare; the scan below re-derives it from what stays.
        if self.earliest_fill > now.0 {
            return false;
        }
        let mut any = false;
        let mut earliest = u64::MAX;
        for idx in 0..self.load_mshrs.capacity() {
            let id = cgct_cache::MshrId(idx);
            let done = match self.load_mshrs.get_primary(id) {
                Some(&d) => d,
                None => continue,
            };
            if done <= now {
                let _ = self.load_mshrs.complete(id);
                any = true;
            } else {
                earliest = earliest.min(done.0);
            }
        }
        self.earliest_fill = earliest;
        any
    }

    fn drain_store_buffer(&mut self, now: Cycle, mem: &mut dyn MemoryInterface) -> bool {
        // Committed stores issue in order but may overlap in flight up to
        // the write-MSHR limit; the memory system applies their coherence
        // effects at issue time, preserving store order for SC.
        self.stores_in_flight.retain(|&t| t > now);
        let mut any = false;
        while self.stores_in_flight.len() < self.cfg.store_mshrs {
            let Some(&(kind, addr)) = self.store_buffer.front() else {
                return any;
            };
            let attempt = match kind {
                StoreKind::Store => mem.try_store(now, addr),
                StoreKind::Dcbz => mem.try_dcbz(now, addr),
            };
            let done = match attempt {
                MemAttempt::Done(done) => done,
                MemAttempt::Blocked(retry) => {
                    // In-order drain: a blocked front entry parks the
                    // whole buffer until the memory system can answer.
                    self.store_retry_at = retry;
                    return any;
                }
            };
            self.store_buffer.pop_front();
            any = true;
            if done > now {
                self.stores_in_flight.push(done);
            }
        }
        any
    }

    fn commit(&mut self, now: Cycle) -> u64 {
        let mut committed = 0;
        while committed < self.cfg.commit_width as u64 {
            if self.head_seq == self.next_seq {
                break;
            }
            let head = self.rob_at(self.head_seq);
            if !head.issued || head.done_at > now {
                break;
            }
            let head_is_mem = head.uop.kind.is_mem();
            // Stores and dcbz retire into the store buffer.
            let buffered = match head.uop.kind {
                UopKind::Store { addr } => Some((StoreKind::Store, addr)),
                UopKind::Dcbz { addr } => Some((StoreKind::Dcbz, addr)),
                _ => None,
            };
            if let Some((kind, addr)) = buffered {
                if self.store_buffer.len() >= self.cfg.store_buffer {
                    self.stats.store_buffer_stall_cycles += 1;
                    break;
                }
                // Merge consecutive stores to the same line.
                let line = addr.0 >> 6;
                let mergeable = matches!(kind, StoreKind::Store)
                    && self
                        .store_buffer
                        .back()
                        .is_some_and(|(k, a)| matches!(k, StoreKind::Store) && a.0 >> 6 == line);
                if !mergeable {
                    self.store_buffer.push_back((kind, addr));
                }
                match kind {
                    StoreKind::Store => self.stats.stores += 1,
                    StoreKind::Dcbz => self.stats.dcbz_ops += 1,
                }
            }
            if head_is_mem {
                self.lsq_occupancy -= 1;
            }
            self.head_seq += 1;
            self.stats.committed += 1;
            committed += 1;
        }
        committed
    }

    /// Whether the in-window register producer of the entry at `seq` has
    /// a result available.
    #[inline]
    fn producer_ready(&self, seq: u64, dep_dist: u8, now: Cycle) -> bool {
        if dep_dist == 0 {
            return true;
        }
        let Some(producer_seq) = seq.checked_sub(dep_dist as u64) else {
            return true;
        };
        if producer_seq < self.head_seq {
            return true; // producer already retired
        }
        let p = self.rob_at(producer_seq);
        p.issued && p.done_at <= now
    }

    /// Issue stage. Returns whether issue must run again next cycle
    /// because a *per-cycle* limit cut it short: a functional unit ran
    /// out, the issue width was exhausted with unissued entries left, or
    /// the issue window was exceeded after at least one issue widened
    /// it. Entries blocked on producers or MSHRs instead wait for
    /// completion events that [`Core::next_event`] reports.
    fn issue(&mut self, now: Cycle, mem: &mut dyn MemoryInterface) -> bool {
        if self.unissued_seqs.is_empty() {
            return false;
        }
        let mut issued = 0;
        let mut fu_blocked = false;
        let mut window_break = false;
        let mut avail: [usize; 5] = [
            self.cfg.int_alu,
            self.cfg.int_mult,
            self.cfg.fp_alu,
            self.cfg.fp_mult,
            self.cfg.mem_ports,
        ];
        // Walk the unissued list in program order, compacting in place:
        // entries that issue drop out, blocked entries (and, after a
        // width/window break, the unprocessed tail) stay.
        let n_list = self.unissued_seqs.len();
        let mut read = 0;
        let mut write = 0;
        while read < n_list {
            if issued >= self.cfg.issue_width {
                break;
            }
            // Only the oldest `issue_window` unissued entries are
            // candidates; every list element is unissued, so the read
            // position is the count scanned.
            if read >= self.cfg.issue_window {
                window_break = true;
                break;
            }
            let seq = self.unissued_seqs[read];
            let e = self.rob_at(seq);
            let dep_dist = e.uop.dep_dist;
            let kind = e.uop.kind;
            // Functional-unit availability (checked before the producer
            // lookup: it is cheaper and both must pass).
            let fu = e.fu_class as usize;
            if avail[fu] == 0 {
                fu_blocked = true;
                self.unissued_seqs[write] = seq;
                write += 1;
                read += 1;
                continue;
            }
            if !self.producer_ready(seq, dep_dist, now) {
                self.unissued_seqs[write] = seq;
                write += 1;
                read += 1;
                continue;
            }
            // A load to a line not already in flight needs a free MSHR.
            if let UopKind::Load { addr, .. } = kind {
                let line = LineAddr(addr.0 >> 6);
                if self.load_mshrs.is_full() && self.load_mshrs.find(line).is_none() {
                    self.unissued_seqs[write] = seq;
                    write += 1;
                    read += 1;
                    continue;
                }
            }
            avail[fu] -= 1;
            let done_at = match kind {
                UopKind::IntAlu | UopKind::Branch { .. } => now + 1,
                UopKind::IntMult => now + self.cfg.int_mult_latency,
                UopKind::FpAlu | UopKind::FpMult => now + self.cfg.fp_latency,
                UopKind::Load { addr, store_intent } => {
                    let line = LineAddr(addr.0 >> 6);
                    let merged = match &mut self.trace {
                        Some((id, sink)) => {
                            self.load_mshrs
                                .find_merge_traced(line, *id, now, sink.as_mut())
                        }
                        None => self.load_mshrs.find(line),
                    };
                    if let Some(id) = merged {
                        // Secondary miss: share the in-flight fill.
                        self.stats.loads += 1;
                        *self.load_mshrs.primary(id)
                    } else {
                        match mem.try_load(now, addr, store_intent) {
                            MemAttempt::Done(done) => {
                                self.stats.loads += 1;
                                if done > now + 1 {
                                    // A real miss occupies an MSHR until it fills.
                                    let _ = match &mut self.trace {
                                        Some((id, sink)) => self.load_mshrs.allocate_traced(
                                            line,
                                            done,
                                            *id,
                                            now,
                                            sink.as_mut(),
                                        ),
                                        None => self.load_mshrs.allocate(line, done),
                                    };
                                    self.earliest_fill = self.earliest_fill.min(done.0);
                                }
                                done
                            }
                            MemAttempt::Blocked(retry) => {
                                // Mid-epoch deferral: release the port,
                                // keep the entry unissued, try again once
                                // the serial phase has answered.
                                avail[fu] += 1;
                                self.issue_retry_at = retry;
                                self.unissued_seqs[write] = seq;
                                write += 1;
                                read += 1;
                                continue;
                            }
                        }
                    }
                }
                // Stores/dcbz only compute their address here; the data
                // access happens post-commit via the store buffer.
                UopKind::Store { .. } | UopKind::Dcbz { .. } => now + 1,
            };
            let entry = &mut self.rob[(seq & self.rob_mask) as usize];
            entry.issued = true;
            entry.done_at = done_at;
            if entry.redirect {
                // The mispredicted branch resolved: refill the pipeline.
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(done_at + self.cfg.mispredict_penalty);
                self.redirects_in_flight -= 1;
            }
            issued += 1;
            read += 1;
        }
        // Keep the unprocessed tail (width/window break) and drop the
        // issued entries the compaction skipped.
        if write != read {
            self.unissued_seqs.copy_within(read..n_list, write);
        }
        self.unissued_seqs.truncate(write + (n_list - read));
        // Width and window breaks only matter if unissued entries remain
        // beyond the cut (width) or newly inside the window (window —
        // which shifts only when something issued).
        fu_blocked
            || (issued >= self.cfg.issue_width && !self.unissued_seqs.is_empty())
            || (window_break && issued > 0)
    }

    fn dispatch(&mut self) -> usize {
        let mut dispatched = 0;
        for _ in 0..self.cfg.dispatch_width {
            if self.rob_len() >= self.cfg.rob {
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.uop.kind.is_mem() && self.lsq_occupancy >= self.cfg.lsq {
                break;
            }
            // cgct-lint: allow(D006) guarded by the non-empty check on the line above; pop_front cannot fail
            let f = self.fetch_queue.pop_front().expect("front exists");
            if f.uop.kind.is_mem() {
                self.lsq_occupancy += 1;
            }
            self.rob[(self.next_seq & self.rob_mask) as usize] = RobEntry {
                fu_class: fu_class_of(f.uop.kind),
                uop: f.uop,
                issued: false,
                done_at: Cycle::ZERO,
                redirect: f.redirect,
            };
            // Dispatch appends in seq order, keeping the list sorted.
            self.unissued_seqs.push(self.next_seq);
            self.next_seq += 1;
            dispatched += 1;
        }
        dispatched
    }

    fn fetch(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemoryInterface,
        src: &mut dyn UopSource,
    ) -> bool {
        if self.redirects_in_flight > 0 || now < self.fetch_stall_until {
            self.stats.fetch_stall_cycles += 1;
            return false;
        }
        if self.fetch_line_ready > now {
            self.stats.fetch_stall_cycles += 1;
            return false;
        }
        let mut any = false;
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() >= self.cfg.fetch_queue {
                break;
            }
            let fetched = match self.pending_fetch.take() {
                Some(f) => f,
                None => {
                    let uop = src.next_uop();
                    let redirect = match uop.kind {
                        UopKind::Branch { kind, taken } => {
                            !self.bpred.predict_and_update(uop.pc, kind, taken)
                        }
                        _ => false,
                    };
                    FetchedUop { uop, redirect }
                }
            };
            // Consuming the stream (or the pending slot) is progress even
            // if the icache stalls the line below.
            any = true;
            // Instruction cache: fetching a new line may stall.
            let line = fetched.uop.pc >> 6;
            if self.current_fetch_line != Some(line) {
                match mem.try_ifetch(now, Addr(fetched.uop.pc)) {
                    MemAttempt::Done(ready) => {
                        self.current_fetch_line = Some(line);
                        if ready > now + 1 {
                            self.fetch_line_ready = ready;
                            self.pending_fetch = Some(fetched);
                            break;
                        }
                    }
                    MemAttempt::Blocked(retry) => {
                        // Mid-epoch deferral: `current_fetch_line` stays
                        // unset so the retry re-asks the icache, which
                        // by then has the serial phase's answer.
                        self.fetch_line_ready = retry;
                        self.pending_fetch = Some(fetched);
                        break;
                    }
                }
            }
            let redirect = fetched.redirect;
            self.fetch_queue.push_back(fetched);
            if redirect {
                // Everything after a mispredicted branch is wrong-path:
                // stop fetching until it resolves.
                self.redirects_in_flight += 1;
                break;
            }
        }
        any
    }
}

impl cgct_sim::Snap for FetchedUop {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([("u", self.uop.snap()), ("r", Json::Bool(self.redirect))])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(FetchedUop {
            uop: unsnap_field(v, "u")?,
            redirect: unsnap_field(v, "r")?,
        })
    }
}

impl cgct_sim::Snap for StoreKind {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(match self {
            StoreKind::Store => "S",
            StoreKind::Dcbz => "Z",
        })
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("S") => Ok(StoreKind::Store),
            Some("Z") => Ok(StoreKind::Dcbz),
            other => Err(format!("unknown store kind {other:?}")),
        }
    }
}

impl cgct_sim::Snap for RobEntry {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        // `fu_class` is derived from the uop kind, so it is not stored.
        Json::obj([
            ("u", self.uop.snap()),
            ("i", Json::Bool(self.issued)),
            ("d", self.done_at.snap()),
            ("r", Json::Bool(self.redirect)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        let uop: Uop = unsnap_field(v, "u")?;
        Ok(RobEntry {
            fu_class: fu_class_of(uop.kind),
            uop,
            issued: unsnap_field(v, "i")?,
            done_at: unsnap_field(v, "d")?,
            redirect: unsnap_field(v, "r")?,
        })
    }
}

impl cgct_sim::Snap for CoreStats {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("committed", Json::u64(self.committed)),
            ("cycles", Json::u64(self.cycles)),
            ("fetch_stall_cycles", Json::u64(self.fetch_stall_cycles)),
            (
                "store_buffer_stall_cycles",
                Json::u64(self.store_buffer_stall_cycles),
            ),
            ("loads", Json::u64(self.loads)),
            ("stores", Json::u64(self.stores)),
            ("dcbz_ops", Json::u64(self.dcbz_ops)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(CoreStats {
            committed: unsnap_field(v, "committed")?,
            cycles: unsnap_field(v, "cycles")?,
            fetch_stall_cycles: unsnap_field(v, "fetch_stall_cycles")?,
            store_buffer_stall_cycles: unsnap_field(v, "store_buffer_stall_cycles")?,
            loads: unsnap_field(v, "loads")?,
            stores: unsnap_field(v, "stores")?,
            dcbz_ops: unsnap_field(v, "dcbz_ops")?,
        })
    }
}

impl Core {
    /// Snapshots all architectural and microarchitectural state except
    /// the configuration (fixed at construction) and any trace sink
    /// (checkpointing is disabled while tracing).
    ///
    /// Only the valid `head_seq..next_seq` window of the ROB ring is
    /// stored; the unissued list is an invariant of those entries and is
    /// rebuilt on restore.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        let rob: Vec<cgct_sim::Json> = (self.head_seq..self.next_seq)
            .map(|seq| self.rob_at(seq).snap())
            .collect();
        Json::obj([
            ("bpred", self.bpred.snap_state()),
            ("fetch_queue", self.fetch_queue.snap()),
            ("pending_fetch", self.pending_fetch.snap()),
            ("current_fetch_line", self.current_fetch_line.snap()),
            ("fetch_line_ready", self.fetch_line_ready.snap()),
            (
                "redirects_in_flight",
                Json::u64(self.redirects_in_flight as u64),
            ),
            ("fetch_stall_until", self.fetch_stall_until.snap()),
            ("rob", Json::Array(rob)),
            ("head_seq", Json::u64(self.head_seq)),
            ("next_seq", Json::u64(self.next_seq)),
            ("lsq_occupancy", self.lsq_occupancy.snap()),
            ("store_buffer", self.store_buffer.snap()),
            ("stores_in_flight", self.stores_in_flight.snap()),
            ("load_mshrs", self.load_mshrs.snap()),
            ("earliest_fill", Json::u64(self.earliest_fill)),
            ("issue_retry_at", self.issue_retry_at.snap()),
            ("store_retry_at", self.store_retry_at.snap()),
            ("stats", self.stats.snap()),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into a
    /// core of the same configuration.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or any capacity mismatch with this
    /// core's configuration.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{field, unsnap_field, Snap};
        self.bpred.restore_state(field(v, "bpred")?)?;
        let fetch_queue: VecDeque<FetchedUop> = unsnap_field(v, "fetch_queue")?;
        if fetch_queue.len() > self.cfg.fetch_queue {
            return Err("fetch queue overflows its capacity".to_string());
        }
        let head_seq: u64 = unsnap_field(v, "head_seq")?;
        let next_seq: u64 = unsnap_field(v, "next_seq")?;
        if next_seq < head_seq || (next_seq - head_seq) as usize > self.cfg.rob {
            return Err("invalid ROB sequence window".to_string());
        }
        let entries: Vec<RobEntry> = unsnap_field(v, "rob")?;
        if entries.len() as u64 != next_seq - head_seq {
            return Err("ROB entry count does not match the sequence window".to_string());
        }
        let store_buffer: VecDeque<(StoreKind, Addr)> = unsnap_field(v, "store_buffer")?;
        if store_buffer.len() > self.cfg.store_buffer {
            return Err("store buffer overflows its capacity".to_string());
        }
        let stores_in_flight: Vec<Cycle> = unsnap_field(v, "stores_in_flight")?;
        if stores_in_flight.len() > self.cfg.store_mshrs {
            return Err("more in-flight stores than write MSHRs".to_string());
        }
        let load_mshrs = MshrFile::unsnap(field(v, "load_mshrs")?)?;
        if load_mshrs.capacity() != self.cfg.load_mshrs {
            return Err("load MSHR capacity mismatch".to_string());
        }
        self.fetch_queue = fetch_queue;
        self.pending_fetch = unsnap_field(v, "pending_fetch")?;
        self.current_fetch_line = unsnap_field(v, "current_fetch_line")?;
        self.fetch_line_ready = unsnap_field(v, "fetch_line_ready")?;
        self.redirects_in_flight = unsnap_field::<u64>(v, "redirects_in_flight")? as usize;
        self.fetch_stall_until = unsnap_field(v, "fetch_stall_until")?;
        self.head_seq = head_seq;
        self.next_seq = next_seq;
        self.unissued_seqs.clear();
        for (i, e) in entries.into_iter().enumerate() {
            let seq = head_seq + i as u64;
            if !e.issued {
                self.unissued_seqs.push(seq);
            }
            self.rob[(seq & self.rob_mask) as usize] = e;
        }
        self.lsq_occupancy = unsnap_field(v, "lsq_occupancy")?;
        self.store_buffer = store_buffer;
        self.stores_in_flight = stores_in_flight;
        self.load_mshrs = load_mshrs;
        self.earliest_fill = unsnap_field(v, "earliest_fill")?;
        self.issue_retry_at = unsnap_field(v, "issue_retry_at")?;
        self.store_retry_at = unsnap_field(v, "store_retry_at")?;
        self.stats = unsnap_field(v, "stats")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::BranchKind;

    /// Memory with fixed latencies and perfect icache.
    struct FixedMem {
        load_latency: u64,
        store_latency: u64,
        loads: u64,
        stores: u64,
    }

    impl FixedMem {
        fn new(load_latency: u64, store_latency: u64) -> Self {
            FixedMem {
                load_latency,
                store_latency,
                loads: 0,
                stores: 0,
            }
        }
    }

    impl MemoryInterface for FixedMem {
        fn ifetch(&mut self, now: Cycle, _addr: Addr) -> Cycle {
            now + 1
        }
        fn load(&mut self, now: Cycle, _addr: Addr, _ex: bool) -> Cycle {
            self.loads += 1;
            now + self.load_latency
        }
        fn store(&mut self, now: Cycle, _addr: Addr) -> Cycle {
            self.stores += 1;
            now + self.store_latency
        }
        fn dcbz(&mut self, now: Cycle, _addr: Addr) -> Cycle {
            now + self.store_latency
        }
    }

    fn run(core: &mut Core, mem: &mut dyn MemoryInterface, src: &mut dyn UopSource, cycles: u64) {
        for c in 0..cycles {
            core.tick(Cycle(c), mem, src);
        }
    }

    /// Straight-line integer code: IPC limited by the 2 integer ALUs.
    #[test]
    fn int_alu_throughput_limited_by_fus() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(pc, UopKind::IntAlu)
        };
        run(&mut core, &mut mem, &mut src, 1000);
        let ipc = core.stats().ipc();
        assert!(
            (1.7..=2.05).contains(&ipc),
            "expected ~2 IPC (2 int ALUs), got {ipc:.3}"
        );
    }

    /// Independent loads overlap: with a 1-cycle L1, IPC is port-limited.
    #[test]
    fn independent_loads_are_port_limited() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(
                pc,
                UopKind::Load {
                    addr: Addr(pc * 8),
                    store_intent: false,
                },
            )
        };
        run(&mut core, &mut mem, &mut src, 1000);
        let ipc = core.stats().ipc();
        assert!(
            (0.85..=1.05).contains(&ipc),
            "expected ~1 IPC (1 mem port), got {ipc:.3}"
        );
    }

    /// Long-latency independent loads overlap up to the ROB limit.
    #[test]
    fn mlp_hides_some_miss_latency() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(100, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(
                pc,
                UopKind::Load {
                    addr: Addr(pc * 128),
                    store_intent: false,
                },
            )
        };
        run(&mut core, &mut mem, &mut src, 5000);
        // Serial execution would give IPC = 1/100; overlap must beat that
        // by an order of magnitude (LSQ=32 entries, 1 port).
        let ipc = core.stats().ipc();
        assert!(ipc > 0.1, "expected MLP > 10x serial, got IPC {ipc:.4}");
    }

    /// Dependent loads (pointer chasing) serialize on the load latency.
    #[test]
    fn dependent_loads_serialize() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(50, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop {
                pc,
                kind: UopKind::Load {
                    addr: Addr(pc * 128),
                    store_intent: false,
                },
                dep_dist: 1,
            }
        };
        run(&mut core, &mut mem, &mut src, 10_000);
        let ipc = core.stats().ipc();
        assert!(
            ipc < 0.025,
            "chained 50-cycle loads must serialize, got IPC {ipc:.4}"
        );
    }

    /// Load MSHRs bound outstanding load-line parallelism.
    #[test]
    fn load_mshrs_bound_mlp() {
        let mut wide = CoreConfig::paper_default();
        wide.load_mshrs = 16;
        let mut narrow = CoreConfig::paper_default();
        narrow.load_mshrs = 2;
        let run_ipc = |cfg: CoreConfig| {
            let mut core = Core::new(cfg);
            let mut mem = FixedMem::new(100, 1);
            let mut pc = 0u64;
            let mut src = move || {
                pc += 4;
                Uop::simple(
                    pc,
                    UopKind::Load {
                        addr: Addr(pc * 128),
                        store_intent: false,
                    },
                )
            };
            run(&mut core, &mut mem, &mut src, 5000);
            core.stats().ipc()
        };
        let wide_ipc = run_ipc(wide);
        let narrow_ipc = run_ipc(narrow);
        assert!(
            wide_ipc > narrow_ipc * 2.0,
            "16 MSHRs ({wide_ipc:.3}) should far outrun 2 ({narrow_ipc:.3})"
        );
    }

    /// Loads to an in-flight line merge onto the primary miss.
    #[test]
    fn secondary_load_misses_merge() {
        struct CountingMem(u64);
        impl MemoryInterface for CountingMem {
            fn ifetch(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 1
            }
            fn load(&mut self, now: Cycle, _a: Addr, _e: bool) -> Cycle {
                self.0 += 1;
                now + 200
            }
            fn store(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 1
            }
            fn dcbz(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 1
            }
        }
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = CountingMem(0);
        let mut pc = 0u64;
        // All loads hit the same line: one memory request serves many.
        let mut src = move || {
            pc += 4;
            Uop::simple(
                pc,
                UopKind::Load {
                    addr: Addr(0x1000 + (pc % 16)),
                    store_intent: false,
                },
            )
        };
        run(&mut core, &mut mem, &mut src, 2000);
        assert!(core.stats().loads > 50);
        assert!(
            mem.0 * 4 < core.stats().loads,
            "{} memory loads for {} executed loads",
            mem.0,
            core.stats().loads
        );
    }

    /// Mispredicted branches cost pipeline refills.
    #[test]
    fn mispredictions_reduce_ipc() {
        let mut well_predicted = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            if pc.is_multiple_of(20) {
                Uop::simple(
                    0x1000, // same PC: trains perfectly, always taken
                    UopKind::Branch {
                        kind: BranchKind::Conditional,
                        taken: true,
                    },
                )
            } else {
                Uop::simple(pc, UopKind::IntAlu)
            }
        };
        run(&mut well_predicted, &mut mem, &mut src, 2000);

        let mut badly_predicted = Core::new(CoreConfig::paper_default());
        let mut mem2 = FixedMem::new(1, 1);
        let mut pc2 = 0u64;
        let mut toggle = 0u64;
        // Pseudo-random outcomes at one PC defeat gshare.
        let mut src2 = move || {
            pc2 += 4;
            if pc2.is_multiple_of(20) {
                toggle = toggle.wrapping_mul(6364136223846793005).wrapping_add(1);
                Uop::simple(
                    0x1000,
                    UopKind::Branch {
                        kind: BranchKind::Conditional,
                        taken: (toggle >> 33) & 1 == 1,
                    },
                )
            } else {
                Uop::simple(pc2, UopKind::IntAlu)
            }
        };
        run(&mut badly_predicted, &mut mem2, &mut src2, 2000);

        assert!(
            well_predicted.stats().ipc() > badly_predicted.stats().ipc() * 1.2,
            "well: {:.3}, badly: {:.3}",
            well_predicted.stats().ipc(),
            badly_predicted.stats().ipc()
        );
    }

    /// Slow stores eventually backpressure commit through the store buffer.
    #[test]
    fn store_buffer_backpressure() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 200);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(
                pc,
                UopKind::Store {
                    addr: Addr(pc * 128),
                },
            )
        };
        run(&mut core, &mut mem, &mut src, 20_000);
        let ipc = core.stats().ipc();
        // With 4 write MSHRs and 200-cycle stores, throughput is bounded
        // near 4/200 = 0.02 IPC.
        assert!(ipc < 0.035, "store stream must be MSHR-bound, got {ipc:.4}");
        assert!(core.stats().store_buffer_stall_cycles > 0);
    }

    /// Same-line stores merge in the store buffer when it backs up.
    #[test]
    fn same_line_stores_merge() {
        let mut cfg = CoreConfig::paper_default();
        cfg.store_mshrs = 1; // force queueing so merging can happen
        let mut core = Core::new(cfg);
        let mut mem = FixedMem::new(1, 50);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(pc, UopKind::Store { addr: Addr(64) }) // all one line
        };
        run(&mut core, &mut mem, &mut src, 5000);
        // Far fewer memory stores than committed store instructions.
        assert!(
            mem.stores * 4 < core.stats().stores,
            "{} memory stores vs {} committed",
            mem.stores,
            core.stats().stores
        );
    }

    /// Instruction-cache stalls throttle fetch.
    #[test]
    fn icache_misses_stall_fetch() {
        struct SlowIMem;
        impl MemoryInterface for SlowIMem {
            fn ifetch(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 30
            }
            fn load(&mut self, now: Cycle, _a: Addr, _e: bool) -> Cycle {
                now + 1
            }
            fn store(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 1
            }
            fn dcbz(&mut self, now: Cycle, _a: Addr) -> Cycle {
                now + 1
            }
        }
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = SlowIMem;
        let mut pc = 0u64;
        // Jump a line every instruction: every fetch misses.
        let mut src = move || {
            pc += 64;
            Uop::simple(pc, UopKind::IntAlu)
        };
        run(&mut core, &mut mem, &mut src, 3000);
        let ipc = core.stats().ipc();
        assert!(
            ipc < 0.06,
            "every-line icache miss must crush IPC, got {ipc:.3}"
        );
        assert!(core.stats().fetch_stall_cycles > 2000);
    }

    /// A full ROB throttles dispatch: long-latency producers with many
    /// dependents bound the in-flight window.
    #[test]
    fn rob_capacity_bounds_inflight_window() {
        let mut small = CoreConfig::paper_default();
        small.rob = 8;
        let big = CoreConfig::paper_default();
        let ipc_with = |cfg: CoreConfig| {
            let mut core = Core::new(cfg);
            let mut mem = FixedMem::new(120, 1);
            let mut pc = 0u64;
            let mut src = move || {
                pc += 4;
                Uop::simple(
                    pc,
                    UopKind::Load {
                        addr: Addr(pc * 128),
                        store_intent: false,
                    },
                )
            };
            run(&mut core, &mut mem, &mut src, 6000);
            core.stats().ipc()
        };
        let small_ipc = ipc_with(small);
        let big_ipc = ipc_with(big);
        assert!(
            big_ipc > small_ipc * 1.5,
            "64-entry ROB ({big_ipc:.3}) should beat 8-entry ({small_ipc:.3})"
        );
    }

    /// Branch kinds train the call/return stack through the uop stream.
    #[test]
    fn calls_and_returns_flow_through_pipeline() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut i = 0u64;
        let mut src = move || {
            i += 1;
            let pc = i * 4;
            match i % 10 {
                3 => Uop::simple(
                    pc,
                    UopKind::Branch {
                        kind: BranchKind::Call,
                        taken: true,
                    },
                ),
                7 => Uop::simple(
                    pc,
                    UopKind::Branch {
                        kind: BranchKind::Return,
                        taken: true,
                    },
                ),
                _ => Uop::simple(pc, UopKind::IntAlu),
            }
        };
        run(&mut core, &mut mem, &mut src, 3000);
        assert!(core.committed() > 1000);
        assert!(core.branch_predictor().predictions() > 100);
        // RAS-covered returns predict well; rate stays moderate.
        assert!(core.stats().ipc() > 0.4, "ipc {:.3}", core.stats().ipc());
    }

    /// dcbz ops flow through the store buffer like stores.
    #[test]
    fn dcbz_ops_commit_through_store_buffer() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 5);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            if pc.is_multiple_of(40) {
                Uop::simple(
                    pc,
                    UopKind::Dcbz {
                        addr: Addr(pc * 64),
                    },
                )
            } else {
                Uop::simple(pc, UopKind::IntAlu)
            }
        };
        run(&mut core, &mut mem, &mut src, 2000);
        assert!(core.stats().dcbz_ops > 10, "{}", core.stats().dcbz_ops);
    }

    /// Mixed FP workloads exercise the FP units without starving.
    #[test]
    fn fp_heavy_mix_is_fp_unit_limited() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            Uop::simple(
                pc,
                if pc.is_multiple_of(2) {
                    UopKind::FpAlu
                } else {
                    UopKind::FpMult
                },
            )
        };
        run(&mut core, &mut mem, &mut src, 4000);
        // 1 FP ALU + 1 FP mult, both 4-cycle latency but pipelined via
        // per-cycle FU counters: throughput near 2/cycle is impossible;
        // at least well above serial.
        let ipc = core.stats().ipc();
        assert!(ipc > 0.4, "fp mix ipc {ipc:.3}");
    }

    /// The quiesced predicate reflects drained state.
    #[test]
    fn quiesce_after_drain() {
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = FixedMem::new(1, 1);
        let mut fed = 0;
        let mut src = move || {
            fed += 1;
            Uop::simple(fed * 4, UopKind::IntAlu)
        };
        // Run a bit, then stop feeding by never calling tick again.
        run(&mut core, &mut mem, &mut src, 100);
        assert!(!core.quiesced(Cycle(0)) || core.committed() > 0);
    }
}
