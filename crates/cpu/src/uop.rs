//! Dynamic micro-operations: the interface between workload generators and
//! the core model.

use cgct_cache::Addr;
use serde::{Deserialize, Serialize};

/// Control-flow classification of a branch, for predictor bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional branch (predicted by gshare).
    Conditional,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (predicted by the return-address stack).
    Return,
}

/// The operation performed by one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopKind {
    /// Integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply/divide (long latency).
    IntMult,
    /// Floating-point add/compare.
    FpAlu,
    /// Floating-point multiply/divide.
    FpMult,
    /// Data load. `store_intent` marks loads whose line will soon be
    /// stored to; the memory system fetches those exclusive (MIPS
    /// R10000-style exclusive prefetching, Table 3).
    Load {
        /// Accessed byte address.
        addr: Addr,
        /// Fetch the line in a modifiable state.
        store_intent: bool,
    },
    /// Data store (performed at commit via the store buffer).
    Store {
        /// Accessed byte address.
        addr: Addr,
    },
    /// PowerPC Data-Cache-Block-Zero: allocate and zero a whole line
    /// without reading memory.
    Dcbz {
        /// Any address within the zeroed line.
        addr: Addr,
    },
    /// Branch with its resolved outcome.
    Branch {
        /// What kind of control transfer this is.
        kind: BranchKind,
        /// Whether the branch is taken.
        taken: bool,
    },
}

impl UopKind {
    /// Whether this op accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            UopKind::Load { .. } | UopKind::Store { .. } | UopKind::Dcbz { .. }
        )
    }

    /// The data address, if this is a memory op.
    pub fn mem_addr(self) -> Option<Addr> {
        match self {
            UopKind::Load { addr, .. } | UopKind::Store { addr } | UopKind::Dcbz { addr } => {
                Some(addr)
            }
            _ => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uop {
    /// Instruction address (drives instruction fetch and prediction).
    pub pc: u64,
    /// Operation.
    pub kind: UopKind,
    /// Register dependence distance: this op reads the result of the
    /// `dep_dist`-th previous instruction (0 = no in-window dependence).
    pub dep_dist: u8,
}

impl Uop {
    /// Convenience constructor for a non-memory op with no dependence.
    pub fn simple(pc: u64, kind: UopKind) -> Uop {
        Uop {
            pc,
            kind,
            dep_dist: 0,
        }
    }
}

/// An infinite dynamic instruction stream.
///
/// Implementations are the synthetic workload generators; the core pulls
/// one `Uop` per fetch slot. Implementors must be deterministic given
/// their construction seed.
pub trait UopSource {
    /// Produces the next dynamic instruction.
    fn next_uop(&mut self) -> Uop;
}

impl<F: FnMut() -> Uop> UopSource for F {
    fn next_uop(&mut self) -> Uop {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(UopKind::Load {
            addr: Addr(0),
            store_intent: false
        }
        .is_mem());
        assert!(UopKind::Store { addr: Addr(4) }.is_mem());
        assert!(UopKind::Dcbz { addr: Addr(64) }.is_mem());
        assert!(!UopKind::IntAlu.is_mem());
        assert!(!UopKind::Branch {
            kind: BranchKind::Conditional,
            taken: true
        }
        .is_mem());
    }

    #[test]
    fn mem_addr_extraction() {
        assert_eq!(
            UopKind::Store { addr: Addr(128) }.mem_addr(),
            Some(Addr(128))
        );
        assert_eq!(UopKind::FpAlu.mem_addr(), None);
    }

    #[test]
    fn closure_is_a_source() {
        let mut n = 0u64;
        let mut src = move || {
            n += 4;
            Uop::simple(n, UopKind::IntAlu)
        };
        let a = UopSource::next_uop(&mut src);
        let b = UopSource::next_uop(&mut src);
        assert_eq!(a.pc, 4);
        assert_eq!(b.pc, 8);
    }
}
