//! Dynamic micro-operations: the interface between workload generators and
//! the core model.

use cgct_cache::Addr;
use cgct_sim::Json;

/// Control-flow classification of a branch, for predictor bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional branch (predicted by gshare).
    Conditional,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (predicted by the return-address stack).
    Return,
}

/// The operation performed by one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply/divide (long latency).
    IntMult,
    /// Floating-point add/compare.
    FpAlu,
    /// Floating-point multiply/divide.
    FpMult,
    /// Data load. `store_intent` marks loads whose line will soon be
    /// stored to; the memory system fetches those exclusive (MIPS
    /// R10000-style exclusive prefetching, Table 3).
    Load {
        /// Accessed byte address.
        addr: Addr,
        /// Fetch the line in a modifiable state.
        store_intent: bool,
    },
    /// Data store (performed at commit via the store buffer).
    Store {
        /// Accessed byte address.
        addr: Addr,
    },
    /// PowerPC Data-Cache-Block-Zero: allocate and zero a whole line
    /// without reading memory.
    Dcbz {
        /// Any address within the zeroed line.
        addr: Addr,
    },
    /// Branch with its resolved outcome.
    Branch {
        /// What kind of control transfer this is.
        kind: BranchKind,
        /// Whether the branch is taken.
        taken: bool,
    },
}

impl UopKind {
    /// Whether this op accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            UopKind::Load { .. } | UopKind::Store { .. } | UopKind::Dcbz { .. }
        )
    }

    /// The data address, if this is a memory op.
    pub fn mem_addr(self) -> Option<Addr> {
        match self {
            UopKind::Load { addr, .. } | UopKind::Store { addr } | UopKind::Dcbz { addr } => {
                Some(addr)
            }
            _ => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Instruction address (drives instruction fetch and prediction).
    pub pc: u64,
    /// Operation.
    pub kind: UopKind,
    /// Register dependence distance: this op reads the result of the
    /// `dep_dist`-th previous instruction (0 = no in-window dependence).
    pub dep_dist: u8,
}

impl Uop {
    /// Convenience constructor for a non-memory op with no dependence.
    pub fn simple(pc: u64, kind: UopKind) -> Uop {
        Uop {
            pc,
            kind,
            dep_dist: 0,
        }
    }

    /// Renders the uop as a JSON object (`{"pc":..,"kind":..,"dep_dist":..}`).
    ///
    /// Unit kinds serialize as bare strings, payload kinds as
    /// single-member objects — the externally-tagged enum layout existing
    /// trace files use.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("pc", Json::u64(self.pc)),
            ("kind", self.kind.to_json()),
            ("dep_dist", Json::u64(self.dep_dist as u64)),
        ])
    }

    /// Parses a uop from the [`to_json`](Self::to_json) layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Uop, String> {
        let pc = v
            .get("pc")
            .and_then(Json::as_u64)
            .ok_or("missing or invalid 'pc'")?;
        let kind = UopKind::from_json(v.get("kind").ok_or("missing 'kind'")?)?;
        let dep = v
            .get("dep_dist")
            .and_then(Json::as_u64)
            .ok_or("missing or invalid 'dep_dist'")?;
        let dep_dist = u8::try_from(dep).map_err(|_| format!("dep_dist {dep} out of range"))?;
        Ok(Uop { pc, kind, dep_dist })
    }
}

impl UopKind {
    /// Externally-tagged JSON rendering (see [`Uop::to_json`]).
    pub fn to_json(&self) -> Json {
        let addr_obj = |tag: &'static str, addr: Addr| {
            Json::obj([(tag, Json::obj([("addr", Json::u64(addr.0))]))])
        };
        match *self {
            UopKind::IntAlu => Json::str("IntAlu"),
            UopKind::IntMult => Json::str("IntMult"),
            UopKind::FpAlu => Json::str("FpAlu"),
            UopKind::FpMult => Json::str("FpMult"),
            UopKind::Load { addr, store_intent } => Json::obj([(
                "Load",
                Json::obj([
                    ("addr", Json::u64(addr.0)),
                    ("store_intent", Json::Bool(store_intent)),
                ]),
            )]),
            UopKind::Store { addr } => addr_obj("Store", addr),
            UopKind::Dcbz { addr } => addr_obj("Dcbz", addr),
            UopKind::Branch { kind, taken } => Json::obj([(
                "Branch",
                Json::obj([
                    (
                        "kind",
                        Json::str(match kind {
                            BranchKind::Conditional => "Conditional",
                            BranchKind::Call => "Call",
                            BranchKind::Return => "Return",
                        }),
                    ),
                    ("taken", Json::Bool(taken)),
                ]),
            )]),
        }
    }

    /// Parses the [`to_json`](Self::to_json) layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the unrecognized tag or malformed payload.
    pub fn from_json(v: &Json) -> Result<UopKind, String> {
        if let Some(tag) = v.as_str() {
            return match tag {
                "IntAlu" => Ok(UopKind::IntAlu),
                "IntMult" => Ok(UopKind::IntMult),
                "FpAlu" => Ok(UopKind::FpAlu),
                "FpMult" => Ok(UopKind::FpMult),
                other => Err(format!("unknown uop kind '{other}'")),
            };
        }
        let pairs = v.as_object().ok_or("uop kind must be string or object")?;
        let (tag, body) = pairs.first().ok_or("empty uop kind object")?;
        let addr = || -> Result<Addr, String> {
            body.get("addr")
                .and_then(Json::as_u64)
                .map(Addr)
                .ok_or_else(|| format!("missing or invalid 'addr' in {tag}"))
        };
        match tag.as_str() {
            "Load" => Ok(UopKind::Load {
                addr: addr()?,
                store_intent: body
                    .get("store_intent")
                    .and_then(Json::as_bool)
                    .ok_or("missing or invalid 'store_intent' in Load")?,
            }),
            "Store" => Ok(UopKind::Store { addr: addr()? }),
            "Dcbz" => Ok(UopKind::Dcbz { addr: addr()? }),
            "Branch" => {
                let kind = match body.get("kind").and_then(Json::as_str) {
                    Some("Conditional") => BranchKind::Conditional,
                    Some("Call") => BranchKind::Call,
                    Some("Return") => BranchKind::Return,
                    other => return Err(format!("invalid branch kind {other:?}")),
                };
                Ok(UopKind::Branch {
                    kind,
                    taken: body
                        .get("taken")
                        .and_then(Json::as_bool)
                        .ok_or("missing or invalid 'taken' in Branch")?,
                })
            }
            other => Err(format!("unknown uop kind '{other}'")),
        }
    }
}

impl cgct_sim::Snap for Uop {
    fn snap(&self) -> Json {
        self.to_json()
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        Uop::from_json(v)
    }
}

/// An infinite dynamic instruction stream.
///
/// Implementations are the synthetic workload generators; the core pulls
/// one `Uop` per fetch slot. Implementors must be deterministic given
/// their construction seed.
pub trait UopSource {
    /// Produces the next dynamic instruction.
    fn next_uop(&mut self) -> Uop;

    /// Snapshots the generator's dynamic state, or `None` when the source
    /// does not support checkpointing (the default).
    fn snap_state(&self) -> Option<Json> {
        None
    }

    /// Restores state captured by [`snap_state`](Self::snap_state).
    ///
    /// # Errors
    ///
    /// Fails when the source does not support checkpointing (the default)
    /// or on malformed input.
    fn restore_state(&mut self, _v: &Json) -> Result<(), String> {
        Err("this uop source does not support checkpointing".to_string())
    }
}

impl<F: FnMut() -> Uop> UopSource for F {
    fn next_uop(&mut self) -> Uop {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(UopKind::Load {
            addr: Addr(0),
            store_intent: false
        }
        .is_mem());
        assert!(UopKind::Store { addr: Addr(4) }.is_mem());
        assert!(UopKind::Dcbz { addr: Addr(64) }.is_mem());
        assert!(!UopKind::IntAlu.is_mem());
        assert!(!UopKind::Branch {
            kind: BranchKind::Conditional,
            taken: true
        }
        .is_mem());
    }

    #[test]
    fn mem_addr_extraction() {
        assert_eq!(
            UopKind::Store { addr: Addr(128) }.mem_addr(),
            Some(Addr(128))
        );
        assert_eq!(UopKind::FpAlu.mem_addr(), None);
    }

    #[test]
    fn closure_is_a_source() {
        let mut n = 0u64;
        let mut src = move || {
            n += 4;
            Uop::simple(n, UopKind::IntAlu)
        };
        let a = UopSource::next_uop(&mut src);
        let b = UopSource::next_uop(&mut src);
        assert_eq!(a.pc, 4);
        assert_eq!(b.pc, 8);
    }
}
