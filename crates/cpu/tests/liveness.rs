//! Liveness property tests for the out-of-order core: arbitrary uop
//! streams over arbitrary memory latencies must always make forward
//! progress (no pipeline deadlocks), and accounting must stay consistent.

use cgct_cache::Addr;
use cgct_cpu::{BranchKind, Core, CoreConfig, MemoryInterface, Uop, UopKind};
use cgct_sim::check::{check, gen_vec};
use cgct_sim::{Cycle, Xoshiro256pp};

/// Memory whose latency varies pseudo-randomly per access.
struct BumpyMem {
    state: u64,
    max_latency: u64,
}

impl BumpyMem {
    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        1 + (self.state >> 33) % self.max_latency
    }
}

impl MemoryInterface for BumpyMem {
    fn ifetch(&mut self, now: Cycle, _a: Addr) -> Cycle {
        now + self.next()
    }
    fn load(&mut self, now: Cycle, _a: Addr, _e: bool) -> Cycle {
        now + self.next()
    }
    fn store(&mut self, now: Cycle, _a: Addr) -> Cycle {
        now + self.next()
    }
    fn dcbz(&mut self, now: Cycle, _a: Addr) -> Cycle {
        now + self.next()
    }
}

#[derive(Debug, Clone, Copy)]
enum K {
    Int,
    Mult,
    Fp,
    Load,
    Store,
    Dcbz,
    Branch(bool),
    Call,
    Ret,
}

fn gen_kind(g: &mut Xoshiro256pp) -> K {
    match g.gen_range(0u8..9) {
        0 => K::Int,
        1 => K::Mult,
        2 => K::Fp,
        3 => K::Load,
        4 => K::Store,
        5 => K::Dcbz,
        6 => K::Branch(g.gen_bool(0.5)),
        7 => K::Call,
        _ => K::Ret,
    }
}

/// Any finite uop pattern, repeated forever over bumpy memory
/// latencies, commits steadily: the core never wedges.
#[test]
fn core_never_deadlocks() {
    check("liveness::core_never_deadlocks", 48, |g| {
        let pattern = gen_vec(g, 1..40, |g| (gen_kind(g), g.gen_range(0u8..3)));
        let max_latency = g.gen_range(1u64..400);
        let seed = g.next_u64();
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = BumpyMem {
            state: seed | 1,
            max_latency,
        };
        let mut i = 0usize;
        let mut pc = 0u64;
        let pat = pattern.clone();
        let mut src = move || {
            let (k, dep) = pat[i % pat.len()];
            i += 1;
            pc += 4;
            let kind = match k {
                K::Int => UopKind::IntAlu,
                K::Mult => UopKind::IntMult,
                K::Fp => UopKind::FpAlu,
                K::Load => UopKind::Load {
                    addr: Addr(pc * 32 % 65536),
                    store_intent: dep == 1,
                },
                K::Store => UopKind::Store {
                    addr: Addr(pc * 48 % 65536),
                },
                K::Dcbz => UopKind::Dcbz {
                    addr: Addr(pc * 64 % 65536),
                },
                K::Branch(t) => UopKind::Branch {
                    kind: BranchKind::Conditional,
                    taken: t,
                },
                K::Call => UopKind::Branch {
                    kind: BranchKind::Call,
                    taken: true,
                },
                K::Ret => UopKind::Branch {
                    kind: BranchKind::Return,
                    taken: true,
                },
            };
            Uop {
                pc,
                kind,
                dep_dist: dep,
            }
        };
        let budget = 30_000u64 + max_latency * 100;
        for c in 0..budget {
            core.tick(Cycle(c), &mut mem, &mut src);
        }
        // Even the slowest mixes must retire a healthy amount of work.
        assert!(
            core.committed() > budget / (max_latency * 8 + 64),
            "only {} committed in {budget} cycles (max_latency {max_latency})",
            core.committed()
        );
    });
}

/// Commit accounting is exact: loads + stores + dcbz counted in the
/// stats match what the stream delivered, in order.
#[test]
fn stats_track_the_stream() {
    check("liveness::stats_track_the_stream", 48, |g| {
        let seed = g.next_u64();
        let mut core = Core::new(CoreConfig::paper_default());
        let mut mem = BumpyMem {
            state: seed | 1,
            max_latency: 30,
        };
        let mut pc = 0u64;
        let mut src = move || {
            pc += 4;
            let kind = match pc % 5 {
                0 => UopKind::Load {
                    addr: Addr(pc * 8 % 32768),
                    store_intent: false,
                },
                1 => UopKind::Store {
                    addr: Addr(pc * 8 % 32768),
                },
                _ => UopKind::IntAlu,
            };
            Uop::simple(pc, kind)
        };
        for c in 0..20_000u64 {
            core.tick(Cycle(c), &mut mem, &mut src);
        }
        let s = core.stats();
        assert!(s.committed > 0);
        // Loads issue at most once per load uop plus replays never exist
        // in this model; stores commit exactly once each.
        assert!(
            s.loads >= s.committed / 5 / 2,
            "loads {} committed {}",
            s.loads,
            s.committed
        );
        assert!(s.stores <= s.committed / 5 + 8);
        assert_eq!(s.cycles, 20_000);
    });
}
