//! Deterministic, seed-free hashing for reproducible data structures.
//!
//! `std`'s default hasher is randomly seeded per process, so the
//! iteration order of a `HashMap` — and anything derived from it —
//! varies run to run. Most of the workspace avoids that by never
//! iterating hash maps on result-affecting paths, but the model checker
//! (`cgct-verify`) and the property harness want hashing that is
//! *stable across processes*: identical inputs must explore identical
//! orders and print identical diagnostics.
//!
//! This module provides FNV-1a (the same function the property harness
//! uses to derive per-property seed streams) as a [`std::hash::Hasher`],
//! plus map/set aliases built on it.
//!
//! # Examples
//!
//! ```
//! use cgct_sim::hash::{fnv1a, StableHashSet};
//!
//! assert_eq!(fnv1a(b"region"), fnv1a(b"region"));
//! let mut seen: StableHashSet<u64> = StableHashSet::default();
//! assert!(seen.insert(42));
//! assert!(!seen.insert(42));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis (64-bit).
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::default();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a hasher. Deterministic: no per-process seed.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(OFFSET_BASIS)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

/// Builds [`Fnv1a`] hashers; usable as a `HashMap`/`HashSet` hasher.
pub type BuildFnv1a = BuildHasherDefault<Fnv1a>;

/// A `HashMap` with process-independent (FNV-1a) hashing.
#[allow(clippy::disallowed_types)] // clippy mirror of the cgct-lint allow below
                                   // cgct-lint: allow(D002) this alias IS the sanctioned deterministic wrapper the rule points everyone at
pub type StableHashMap<K, V> = std::collections::HashMap<K, V, BuildFnv1a>;

/// A `HashSet` with process-independent (FNV-1a) hashing.
#[allow(clippy::disallowed_types)] // clippy mirror of the cgct-lint allow below
                                   // cgct-lint: allow(D002) this alias IS the sanctioned deterministic wrapper the rule points everyone at
pub type StableHashSet<T> = std::collections::HashSet<T, BuildFnv1a>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::default();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn map_and_set_work_with_integer_keys() {
        let mut m: StableHashMap<u64, &str> = StableHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: StableHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
    }
}
