//! A small seeded property-test harness.
//!
//! Replaces the external `proptest` dependency: every property runs a
//! fixed number of generated cases, each driven by a [`Xoshiro256pp`]
//! stream derived via [`SeedSequence`] from a root seed, so the whole
//! suite is deterministic and hermetic. When a case panics, the harness
//! prints the property name, case index, and the exact seed that
//! reproduces it, then re-raises the panic.
//!
//! Set `CGCT_TEST_SEED` to change the root seed (e.g. to reproduce a
//! failure from CI or to widen coverage across runs).
//!
//! # Examples
//!
//! ```
//! use cgct_sim::check::check;
//!
//! check("addition commutes", 32, |g| {
//!     let a = g.gen_range(0u32..1000);
//!     let b = g.gen_range(0u32..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Reproducing a CI failure locally means exporting the seed the harness
//! printed; `CGCT_TEST_SEED` reroots every property in the process
//! (doctests run as their own processes, so setting it here is safe):
//!
//! ```
//! use cgct_sim::check;
//!
//! std::env::set_var("CGCT_TEST_SEED", "12345");
//! assert_eq!(check::root_seed(), 12345);
//!
//! std::env::remove_var("CGCT_TEST_SEED");
//! assert_eq!(check::root_seed(), check::DEFAULT_ROOT_SEED);
//! ```

use crate::rng::{SeedSequence, Xoshiro256pp};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default root seed when `CGCT_TEST_SEED` is not set.
pub const DEFAULT_ROOT_SEED: u64 = 0xC6C7_2005_15CA;

/// The root seed for this process: `CGCT_TEST_SEED` or the default.
#[allow(clippy::disallowed_methods)] // clippy mirror of the D004 allow below
pub fn root_seed() -> u64 {
    // cgct-lint: allow(D004) this is the one documented read of CGCT_TEST_SEED, the property-test seed override
    match std::env::var("CGCT_TEST_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("CGCT_TEST_SEED must be a u64, got {v:?}")),
        Err(_) => DEFAULT_ROOT_SEED,
    }
}

/// Runs `cases` generated cases of the property `f`.
///
/// Each case receives its own generator; the stream seed depends on the
/// property `name` (stable across reordering of tests in a file) and the
/// case index. On panic the failing `(name, case, seed)` triple is
/// printed so the case can be replayed in isolation with [`check_one`].
pub fn check(name: &str, cases: u64, f: impl Fn(&mut Xoshiro256pp)) {
    let root = root_seed();
    let seq = SeedSequence::new(root).child(name_hash(name));
    for case in 0..cases {
        let seed = seq.stream(case);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} (case seed {seed:#x}).\n\
                 Replay just this case with cgct_sim::check::check_one(\"{name}\", {seed:#x}, ...)\n\
                 or rerun the suite with CGCT_TEST_SEED={root}."
            );
            resume_unwind(payload);
        }
    }
}

/// Replays a single case of a property from a printed seed.
pub fn check_one(name: &str, seed: u64, f: impl Fn(&mut Xoshiro256pp)) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
    if let Err(payload) = result {
        eprintln!("property '{name}' failed replaying case seed {seed:#x}");
        resume_unwind(payload);
    }
}

/// Generates a vector whose length is drawn from `len` and whose
/// elements come from `item` — the common "vec of ops" generator shape.
pub fn gen_vec<T>(
    g: &mut Xoshiro256pp,
    len: std::ops::Range<usize>,
    mut item: impl FnMut(&mut Xoshiro256pp) -> T,
) -> Vec<T> {
    let n = g.gen_range(len);
    (0..n).map(|_| item(g)).collect()
}

/// FNV-1a over the property name, used to derive its seed stream.
fn name_hash(name: &str) -> u64 {
    crate::hash::fnv1a(name.as_bytes())
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // D002 mirror: test code is exempt by policy
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_the_requested_number_of_cases() {
        let count = AtomicU64::new(0);
        check("counting", 17, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn cases_get_distinct_deterministic_streams() {
        let mut first: Vec<u64> = Vec::new();
        let collected = std::sync::Mutex::new(Vec::new());
        check("streams", 8, |g| {
            collected.lock().unwrap().push(g.next_u64());
        });
        first.extend(collected.lock().unwrap().iter());
        let collected2 = std::sync::Mutex::new(Vec::new());
        check("streams", 8, |g| {
            collected2.lock().unwrap().push(g.next_u64());
        });
        assert_eq!(first, *collected2.lock().unwrap(), "reruns are identical");
        let unique: std::collections::HashSet<u64> = first.iter().copied().collect();
        assert_eq!(unique.len(), 8, "each case sees a fresh stream");
    }

    #[test]
    fn failure_panics_through() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always fails", 3, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn gen_vec_respects_length_range() {
        check("gen_vec lengths", 32, |g| {
            let v = gen_vec(g, 2..10, |g| g.gen_range(0u32..5));
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        });
    }

    #[test]
    fn different_names_decorrelate() {
        let a = std::sync::Mutex::new(0u64);
        check("name a", 1, |g| *a.lock().unwrap() = g.next_u64());
        let b = std::sync::Mutex::new(0u64);
        check("name b", 1, |g| *b.lock().unwrap() = g.next_u64());
        assert_ne!(*a.lock().unwrap(), *b.lock().unwrap());
    }
}
