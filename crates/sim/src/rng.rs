//! Deterministic seed derivation and the in-tree PRNG.
//!
//! The paper averages several runs of each benchmark with small random delays
//! added to memory requests to perturb the system (Alameldeen et al.,
//! "Simulating a $2M Commercial Server on a $2K PC").
//! Every random stream in this reproduction is derived from a single root
//! seed through [`SeedSequence`], so a run is exactly reproducible from
//! `(benchmark, config, root seed)`.
//!
//! The generator itself is [`Xoshiro256pp`] (xoshiro256++ by Blackman &
//! Vigna), implemented in-tree so the workspace builds with zero external
//! crates. It carries the sampling helpers the simulator needs:
//! [`gen_range`](Xoshiro256pp::gen_range), [`gen_bool`](Xoshiro256pp::gen_bool),
//! uniform floats, [`shuffle`](Xoshiro256pp::shuffle), and weighted choice.
//!
//! # Seeding and replay
//!
//! Reseeding with the same value replays the identical stream — this is
//! what makes any run (or any failing test case) replayable from its
//! printed seed alone:
//!
//! ```
//! use cgct_sim::Xoshiro256pp;
//!
//! let mut a = Xoshiro256pp::seed_from_u64(7);
//! let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
//!
//! // A fresh generator from the same seed produces the same values...
//! let mut b = Xoshiro256pp::seed_from_u64(7);
//! let replay: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
//! assert_eq!(first, replay);
//!
//! // ...and a different seed diverges immediately.
//! let mut c = Xoshiro256pp::seed_from_u64(8);
//! assert_ne!(first[0], c.next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// Derives independent, stable sub-seeds from a root seed.
///
/// Derivation uses SplitMix64, which is well distributed even for
/// consecutive inputs, so `(root, stream_id)` pairs yield uncorrelated
/// streams.
///
/// # Examples
///
/// ```
/// use cgct_sim::SeedSequence;
/// let seq = SeedSequence::new(42);
/// let a = seq.stream(0);
/// let b = seq.stream(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).stream(0)); // reproducible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed this sequence was created from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns the seed for logical stream `stream_id`.
    pub fn stream(&self, stream_id: u64) -> u64 {
        splitmix64(self.root ^ splitmix64(stream_id.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Derives a child sequence, e.g. one per processor, that can itself
    /// hand out per-component streams.
    pub fn child(&self, child_id: u64) -> SeedSequence {
        SeedSequence {
            root: self.stream(child_id),
        }
    }

    /// A generator seeded from logical stream `stream_id`.
    pub fn rng(&self, stream_id: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(self.stream(stream_id))
    }
}

/// One round of the SplitMix64 output function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the workspace's only pseudo-random generator.
///
/// Small (32 bytes of state), fast, and statistically strong for
/// simulation workloads. Seeding goes through a SplitMix64 stream as the
/// authors recommend, so any `u64` (including 0) is a good seed.
///
/// # Examples
///
/// ```
/// use cgct_sim::Xoshiro256pp;
/// let mut rng = Xoshiro256pp::seed_from_u64(7);
/// let x = rng.gen_range(0..100u64);
/// assert!(x < 100);
/// let p = rng.gen_f32();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator by expanding `seed` through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = w ^ (w >> 31);
        }
        Xoshiro256pp { s }
    }

    /// Builds the generator from a raw 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one degenerate state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&x| x != 0), "state must be non-zero");
        Xoshiro256pp { s }
    }

    /// The raw 256-bit state, for checkpointing (see
    /// [`from_state`](Self::from_state)).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds_inclusive();
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // Compare against a 53-bit uniform float; exact for p = 0 and 1.
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random bits.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Index drawn with probability proportional to `weights[i]`.
    ///
    /// Non-positive weights get zero probability. If every weight is
    /// non-positive the last index is returned (mirroring a cumulative
    /// scan that never triggers), so callers need no special casing.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn choose_weighted(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        let mut pick = self.gen_f32() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if pick < w {
                return i;
            }
            pick -= w;
        }
        weights.len() - 1
    }
}

impl crate::snap::Snap for Xoshiro256pp {
    fn snap(&self) -> crate::json::Json {
        self.s.to_vec().snap()
    }

    fn unsnap(v: &crate::json::Json) -> Result<Self, String> {
        let words = <Vec<u64> as crate::snap::Snap>::unsnap(v)?;
        let s: [u64; 4] = words
            .try_into()
            .map_err(|_| "rng state must have 4 words".to_string())?;
        if s.iter().all(|&x| x == 0) {
            return Err("rng state must be non-zero".to_string());
        }
        Ok(Xoshiro256pp::from_state(s))
    }
}

/// Integer types [`Xoshiro256pp::gen_range`] can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive(rng: &mut Xoshiro256pp, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Xoshiro256pp::gen_range`].
pub trait SampleRange<T: UniformInt> {
    /// The `(lo, hi)` inclusive bounds; panics if empty.
    fn bounds_inclusive(self) -> (T, T);
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(rng: &mut Xoshiro256pp, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire): reject the short
                // leading zone so every value is exactly equally likely.
                let n = span + 1;
                let zone = u64::MAX - (u64::MAX - n + 1) % n;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return lo.wrapping_add((v % n) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn bounds_inclusive(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds_inclusive(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

#[cfg(test)]
#[allow(clippy::disallowed_types)] // D002 mirror: test code is exempt by policy
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_distinct() {
        let seq = SeedSequence::new(7);
        let seeds: HashSet<u64> = (0..1000).map(|i| seq.stream(i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn streams_are_reproducible() {
        for root in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let a = SeedSequence::new(root);
            let b = SeedSequence::new(root);
            for i in 0..16 {
                assert_eq!(a.stream(i), b.stream(i));
            }
        }
    }

    #[test]
    fn children_do_not_collide_with_parent_streams() {
        let seq = SeedSequence::new(99);
        let child = seq.child(3);
        let parent_streams: HashSet<u64> = (0..100).map(|i| seq.stream(i)).collect();
        let child_streams: HashSet<u64> = (0..100).map(|i| child.stream(i)).collect();
        assert!(parent_streams.is_disjoint(&child_streams));
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(
            SeedSequence::new(1).stream(0),
            SeedSequence::new(2).stream(0)
        );
    }

    // Reference vectors computed with an independent implementation of the
    // Blackman-Vigna reference C code (raw state, no seeding expansion).
    #[test]
    fn matches_reference_outputs_for_raw_state() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expect = [
            0x0280_0001u64,
            0x0380_0067,
            0x000c_c000_0380_0067,
            0x000c_c201_9944_00b2,
            0x8012_a201_9ac4_33cd,
            0x8a69_978a_cdee_33ba,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn matches_reference_outputs_for_seeded_state() {
        // SplitMix64 expansion of seed 42, then xoshiro256++ outputs.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(
            rng.s,
            [
                0xbdd7_3226_2feb_6e95,
                0x28ef_e333_b266_f103,
                0x4752_6757_130f_9f52,
                0x581c_e1ff_0e4a_e394
            ]
        );
        let expect = [
            0xd076_4d4f_4476_689fu64,
            0x519e_4174_576f_3791,
            0xfbe0_7cfb_0c24_ed8c,
            0xb37d_9f60_0cd8_35b8,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
        let mut zero = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(zero.next_u64(), 0x5317_5d61_490b_23df);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_endpoints() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            seen.insert(x);
        }
        assert_eq!(seen.len(), 10, "all 10 values should appear");
        for _ in 0..2000 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
        }
        // Single-element ranges are fine.
        assert_eq!(rng.gen_range(7usize..8), 7);
        assert_eq!(rng.gen_range(9u8..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let buckets = 10u64;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[rng.gen_range(0..buckets) as usize] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&frac), "p=0.3 measured {frac}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut sum = 0.0f64;
        for _ in 0..100_000 {
            let a = rng.gen_f32();
            let b = rng.gen_f64();
            assert!((0.0..1.0).contains(&a));
            assert!((0.0..1.0).contains(&b));
            sum += b;
        }
        let mean = sum / 100_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_weighted_follows_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let weights = [1.0f32, 3.0, 0.0, 6.0];
        let mut counts = [0u64; 4];
        for _ in 0..100_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[2], 0, "zero weight must never be chosen");
        let f1 = counts[1] as f64 / 100_000.0;
        let f3 = counts[3] as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&f1), "weight 3/10 measured {f1}");
        assert!((0.58..0.62).contains(&f3), "weight 6/10 measured {f3}");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(rng.choose(&v).unwrap()));
        }
        assert_eq!(rng.choose::<u32>(&[]), None);
    }

    #[test]
    fn seed_sequence_hands_out_rngs() {
        let seq = SeedSequence::new(3);
        let mut a = seq.rng(0);
        let mut b = seq.rng(0);
        let mut c = seq.rng(1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
