//! Deterministic seed derivation.
//!
//! The paper averages several runs of each benchmark with small random delays
//! added to memory requests to perturb the system (Alameldeen et al.,
//! "Simulating a $2M Commercial Server on a $2K PC").
//! Every random stream in this reproduction is derived from a single root
//! seed through [`SeedSequence`], so a run is exactly reproducible from
//! `(benchmark, config, root seed)`.

/// Derives independent, stable sub-seeds from a root seed.
///
/// Derivation uses SplitMix64, which is well distributed even for
/// consecutive inputs, so `(root, stream_id)` pairs yield uncorrelated
/// streams.
///
/// # Examples
///
/// ```
/// use cgct_sim::SeedSequence;
/// let seq = SeedSequence::new(42);
/// let a = seq.stream(0);
/// let b = seq.stream(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).stream(0)); // reproducible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed this sequence was created from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns the seed for logical stream `stream_id`.
    pub fn stream(&self, stream_id: u64) -> u64 {
        splitmix64(self.root ^ splitmix64(stream_id.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Derives a child sequence, e.g. one per processor, that can itself
    /// hand out per-component streams.
    pub fn child(&self, child_id: u64) -> SeedSequence {
        SeedSequence {
            root: self.stream(child_id),
        }
    }
}

/// One round of the SplitMix64 output function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_distinct() {
        let seq = SeedSequence::new(7);
        let seeds: HashSet<u64> = (0..1000).map(|i| seq.stream(i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn streams_are_reproducible() {
        for root in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let a = SeedSequence::new(root);
            let b = SeedSequence::new(root);
            for i in 0..16 {
                assert_eq!(a.stream(i), b.stream(i));
            }
        }
    }

    #[test]
    fn children_do_not_collide_with_parent_streams() {
        let seq = SeedSequence::new(99);
        let child = seq.child(3);
        let parent_streams: HashSet<u64> = (0..100).map(|i| seq.stream(i)).collect();
        let child_streams: HashSet<u64> = (0..100).map(|i| child.stream(i)).collect();
        assert!(parent_streams.is_disjoint(&child_streams));
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(
            SeedSequence::new(1).stream(0),
            SeedSequence::new(2).stream(0)
        );
    }
}
