//! Deterministic std-only thread pool for experiment fan-out.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]
// ^ clippy mirror of D001/D004 (clippy.toml): this module holds the
// justified wall-clock telemetry and CGCT_JOBS reads; see the
// per-site cgct-lint allows below.
//!
//! The paper's evaluation (§5) is a cross-product — figures × region
//! sizes × RCA geometries × nine workloads × perturbed seeds — and every
//! cell is an independent pure function of its work item. This module
//! runs such products on scoped [`std::thread`] workers that pull
//! `(index, item)` pairs from a shared [`Injector`] (a
//! `Mutex<VecDeque>` guarded by a `Condvar`), with the worker count
//! taken from [`std::thread::available_parallelism`] unless the
//! `CGCT_JOBS` environment variable overrides it.
//!
//! Determinism is by construction, not by accident:
//!
//! * a work item's seed is part of the item (derived from the
//!   experiment's [`SeedSequence`](crate::SeedSequence) root), never
//!   from worker identity or scheduling order;
//! * results are collected out-of-order into per-index slots and
//!   returned **in canonical item order**, so the merged output of a
//!   2-worker run, an 8-worker run, and a serial run are identical;
//! * `jobs = 1` (or `CGCT_JOBS=1`) degrades to a plain in-order loop on
//!   the calling thread — no worker threads are spawned at all.
//!
//! # Intra-run parallelism
//!
//! Besides the across-items fan-out above, the pool hosts the two
//! primitives of the *conservative parallel discrete-event* mode
//! (DESIGN.md, "Concurrency & determinism model"), where the nodes of
//! **one** simulated machine advance in parallel between coherence
//! barriers:
//!
//! * [`EpochGate`] — a reusable sense-reversing barrier that separates
//!   each epoch's parallel phase from its serial coherence phase;
//! * [`intra_jobs`] — the `CGCT_INTRA_JOBS` knob (`None` = legacy
//!   single-threaded engine, `Some(1)` = epoch engine run serially, the
//!   `--intra-serial` reference mode, `Some(n)` = `n` workers).
//!
//! The same determinism rules apply: worker identity must never leak
//! into results, so everything scheduling-order-sensitive happens in
//! the serial phase, in canonical node order.
//!
//! # Examples
//!
//! ```
//! use cgct_sim::pool;
//!
//! let squares = pool::run_on(4, (0u64..32).collect(), |_idx, x| x * x);
//! assert_eq!(squares, (0u64..32).map(|x| x * x).collect::<Vec<_>>());
//! ```
//!
//! Epochs with a [`EpochGate`]: two workers each append to their own
//! slot during the parallel phase; the gate's releaser (exactly one
//! party per epoch) merges in canonical order during the serial phase.
//!
//! ```
//! use cgct_sim::pool::EpochGate;
//! use std::sync::Mutex;
//!
//! let gate = EpochGate::new(2);
//! let slots = [Mutex::new(Vec::new()), Mutex::new(Vec::new())];
//! let merged = Mutex::new(Vec::new());
//! std::thread::scope(|scope| {
//!     let (gate, slots, merged) = (&gate, &slots, &merged);
//!     for w in 0..2usize {
//!         scope.spawn(move || {
//!             for epoch in 0..3 {
//!                 slots[w].lock().unwrap().push((epoch, w)); // parallel phase
//!                 if gate.wait() {
//!                     // Exactly one releaser per epoch: serial phase.
//!                     let mut m = merged.lock().unwrap();
//!                     for s in slots {
//!                         m.append(&mut s.lock().unwrap());
//!                     }
//!                 }
//!                 gate.wait(); // serial phase done; next epoch may start
//!             }
//!         });
//!     }
//! });
//! let merged = merged.into_inner().unwrap();
//! assert_eq!(merged.len(), 6);
//! // Within every epoch the merge order is canonical (slot 0 then 1).
//! for e in 0..3 {
//!     assert_eq!(merged[2 * e], (e, 0));
//!     assert_eq!(merged[2 * e + 1], (e, 1));
//! }
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
// cgct-lint: allow(D001) wall-clock here is host-side pool telemetry (ItemReport.seconds), never part of simulated state or artifacts
use std::time::Instant;

/// A closeable multi-producer multi-consumer FIFO work queue.
///
/// `Mutex<VecDeque>` holds the pending items; a [`Condvar`] parks
/// consumers while the queue is empty but still open. Once
/// [`close`](Injector::close) is called, drained consumers see `None`
/// and exit.
///
/// # Examples
///
/// ```
/// use cgct_sim::pool::Injector;
///
/// let q: Injector<u32> = Injector::new();
/// q.push(7);
/// q.close();
/// assert_eq!(q.pop(), Some(7));
/// assert_eq!(q.pop(), None); // closed and drained
/// ```
#[derive(Debug)]
pub struct Injector<T> {
    state: Mutex<InjectorState<T>>,
    nonempty: Condvar,
}

#[derive(Debug)]
struct InjectorState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Enqueues one item and wakes a waiting consumer.
    ///
    /// # Panics
    ///
    /// Panics if the queue has been closed.
    pub fn push(&self, item: T) {
        let mut st = self.state.lock().expect("injector poisoned");
        assert!(!st.closed, "push after close");
        st.queue.push_back(item);
        drop(st);
        self.nonempty.notify_one();
    }

    /// Marks the queue closed and wakes every waiting consumer.
    pub fn close(&self) {
        self.state.lock().expect("injector poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Dequeues the next item, blocking while the queue is empty but
    /// open. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("injector poisoned");
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.nonempty.wait(st).expect("injector poisoned");
        }
    }

    /// Number of items currently queued (racy; for diagnostics only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("injector poisoned").queue.len()
    }

    /// Whether the queue is currently empty (racy; for diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Progress report passed to the observer after each completed item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemReport {
    /// Canonical index of the item that just finished.
    pub index: usize,
    /// Items completed so far (including this one).
    pub done: usize,
    /// Total items in this run.
    pub total: usize,
    /// Wall-clock seconds this item took.
    pub seconds: f64,
}

/// The worker count: `CGCT_JOBS` if set, else the machine's available
/// parallelism (falling back to 4 if that cannot be determined).
///
/// `CGCT_JOBS=1` forces fully serial execution; values that do not
/// parse as a positive integer are ignored.
pub fn jobs() -> usize {
    // cgct-lint: allow(D004) this is the one documented read of CGCT_JOBS; cgct-sim sits below the cgct-system config seam
    jobs_from(std::env::var("CGCT_JOBS").ok().as_deref())
}

/// [`jobs`] with the environment override passed explicitly (testable).
pub fn jobs_from(env_override: Option<&str>) -> usize {
    if let Some(v) = env_override {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The intra-run worker count: `CGCT_INTRA_JOBS` parsed as a positive
/// integer.
///
/// `None` (unset, empty, `0`, or unparsable) selects the legacy
/// single-threaded engine; `Some(1)` selects the epoch engine run
/// serially (the `--intra-serial` byte-identity reference); `Some(n)`
/// shards the machine's logical processes over `n` workers.
pub fn intra_jobs() -> Option<usize> {
    // cgct-lint: allow(D004) this is the one documented read of CGCT_INTRA_JOBS; cgct-sim sits below the cgct-system config seam
    intra_jobs_from(std::env::var("CGCT_INTRA_JOBS").ok().as_deref())
}

/// [`intra_jobs`] with the environment override passed explicitly
/// (testable).
pub fn intra_jobs_from(env_override: Option<&str>) -> Option<usize> {
    let v = env_override?.trim();
    if v.is_empty() {
        return None;
    }
    v.parse::<usize>().ok().filter(|&n| n >= 1)
}

/// A reusable sense-reversing barrier for epoch-structured parallelism.
///
/// All `parties` threads call [`wait`](EpochGate::wait); every call
/// blocks until the last party arrives, whose call returns `true` (all
/// others return `false`). The gate then resets itself, so the same
/// gate separates every epoch of a run — unlike [`std::sync::Barrier`],
/// it is designed for millions of short epochs: waiters spin briefly
/// (epoch phases are microseconds long), then park on a condition
/// variable so an oversubscribed host — more parties than hardware
/// threads — degrades to ordinary blocking instead of burning the CPU
/// the releasing thread needs.
///
/// The release establishes a happens-before edge from every arriving
/// thread to every released thread, so state written during one phase
/// is visible to all parties in the next.
///
/// # Examples
///
/// ```
/// use cgct_sim::pool::EpochGate;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let gate = EpochGate::new(3);
/// let releases = AtomicUsize::new(0);
/// std::thread::scope(|scope| {
///     for _ in 0..3 {
///         scope.spawn(|| {
///             for _epoch in 0..10 {
///                 if gate.wait() {
///                     releases.fetch_add(1, Ordering::Relaxed);
///                 }
///             }
///         });
///     }
/// });
/// // Exactly one party released each of the 10 epochs.
/// assert_eq!(releases.load(Ordering::Relaxed), 10);
/// ```
#[derive(Debug)]
pub struct EpochGate {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    /// Parking lot for waiters that outlast the spin phase. The lock
    /// guards nothing by itself — `generation` is the real state — but
    /// flipping the sense *under* it closes the missed-wakeup race.
    park: Mutex<()>,
    parked: Condvar,
}

impl EpochGate {
    /// Creates a gate for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> EpochGate {
        assert!(parties >= 1, "EpochGate needs at least one party");
        EpochGate {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            park: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    /// Blocks until all parties have arrived; returns `true` for the
    /// single arrival that released the gate.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the counter, then flip the sense. The
            // release-store on `generation` publishes the reset (and all
            // parallel-phase writes) to every waiter's acquire-load; the
            // park lock is held across the flip so no waiter can check
            // the old sense and park between it and the notify.
            self.arrived.store(0, Ordering::Release);
            {
                let _guard = self.park.lock().expect("epoch gate poisoned");
                self.generation
                    .store(gen.wrapping_add(1), Ordering::Release);
            }
            self.parked.notify_all();
            return true;
        }
        // Spin first: epoch phases are short, and on an unloaded
        // multi-core host the release lands within the spin window.
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 1 << 7 {
                std::hint::spin_loop();
                continue;
            }
            // Park: re-check the sense under the lock (the releaser
            // flips it under the same lock), then sleep until notified.
            let mut guard = self.park.lock().expect("epoch gate poisoned");
            while self.generation.load(Ordering::Acquire) == gen {
                guard = self.parked.wait(guard).expect("epoch gate poisoned");
            }
            break;
        }
        false
    }

    /// Number of threads the gate synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }
}

/// Maps `f` over `items` on [`jobs`]`()` workers, preserving item order
/// in the returned vector.
pub fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_on(jobs(), items, f)
}

/// [`run`] with an explicit worker count.
pub fn run_on<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_observed(jobs, items, f, |_| {})
}

/// [`run_on`] with a progress observer, called after every completed
/// item (from whichever worker finished it).
///
/// The observer sees completion order, which **is** scheduling
/// dependent; the returned results are not — they are always in
/// canonical item order.
///
/// # Panics
///
/// Propagates the first panic raised by `f` once all workers have
/// stopped.
pub fn run_observed<T, R, F, O>(jobs: usize, items: Vec<T>, f: F, observe: O) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    O: Fn(ItemReport) + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(total);
    if workers == 1 {
        // Serial escape hatch: run in order on the calling thread.
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                // cgct-lint: allow(D001) per-item wall time is telemetry for progress display only
                let t0 = Instant::now();
                let r = f(index, item);
                observe(ItemReport {
                    index,
                    done: index + 1,
                    total,
                    seconds: t0.elapsed().as_secs_f64(),
                });
                r
            })
            .collect();
    }

    let injector: Injector<(usize, T)> = Injector::new();
    // One slot per item so workers never contend on a shared results
    // vector; canonical order falls out of the slot index.
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    for pair in items.into_iter().enumerate() {
        injector.push(pair);
    }
    injector.close();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some((index, item)) = injector.pop() {
                    // cgct-lint: allow(D001) per-item wall time is telemetry for progress display only
                    let t0 = Instant::now();
                    let r = f(index, item);
                    *slots[index].lock().expect("result slot poisoned") = Some(r);
                    let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                    observe(ItemReport {
                        index,
                        done: finished,
                        total,
                        seconds: t0.elapsed().as_secs_f64(),
                    });
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without producing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_canonical_order_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64, 200] {
            let got = run_on(jobs, items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn single_job_runs_on_calling_thread_in_order() {
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        run_on(1, (0usize..16).collect(), |i, x| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
            x
        });
        assert_eq!(*seen.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_run_uses_multiple_threads() {
        // With workers blocked until both have picked up an item, two
        // distinct thread ids must appear.
        let barrier = std::sync::Barrier::new(2);
        let ids = Mutex::new(HashSet::new());
        run_on(2, vec![(), ()], |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            barrier.wait();
        });
        assert_eq!(ids.lock().unwrap().len(), 2);
    }

    #[test]
    fn observer_sees_every_item_exactly_once() {
        for jobs in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let sum = AtomicU64::new(0);
            run_observed(
                jobs,
                (0u64..37).collect(),
                |_, x| {
                    sum.fetch_add(x, Ordering::Relaxed);
                },
                |report| {
                    assert_eq!(report.total, 37);
                    assert!(report.done >= 1 && report.done <= 37);
                    assert!(report.seconds >= 0.0);
                    seen.lock().unwrap().push(report.index);
                },
            );
            let mut indices = seen.lock().unwrap().clone();
            indices.sort_unstable();
            assert_eq!(indices, (0..37).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(sum.load(Ordering::Relaxed), (0..37).sum::<u64>());
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = run_on(8, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn injector_delivers_all_items_across_consumers() {
        let q: Injector<u32> = Injector::new();
        let got = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(x) = q.pop() {
                        got.lock().unwrap().push(x);
                    }
                });
            }
            // Producer: stream items, then close (consumers may be
            // parked on the condvar at any point in between).
            for x in 0..1000 {
                q.push(x);
            }
            q.close();
        });
        let mut v = got.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn injector_pop_after_close_drains_then_stops() {
        let q: Injector<&str> = Injector::new();
        q.push("a");
        q.push("b");
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "push after close")]
    fn injector_rejects_push_after_close() {
        let q: Injector<u8> = Injector::new();
        q.close();
        q.push(1);
    }

    #[test]
    fn jobs_from_parses_override() {
        assert_eq!(jobs_from(Some("1")), 1);
        assert_eq!(jobs_from(Some("6")), 6);
        assert_eq!(jobs_from(Some(" 12 ")), 12);
        // Invalid values fall back to machine parallelism (>= 1).
        assert!(jobs_from(Some("0")) >= 1);
        assert!(jobs_from(Some("lots")) >= 1);
        assert!(jobs_from(None) >= 1);
    }

    #[test]
    fn intra_jobs_from_parses_override() {
        assert_eq!(intra_jobs_from(None), None);
        assert_eq!(intra_jobs_from(Some("")), None);
        assert_eq!(intra_jobs_from(Some("0")), None);
        assert_eq!(intra_jobs_from(Some("junk")), None);
        assert_eq!(intra_jobs_from(Some("1")), Some(1));
        assert_eq!(intra_jobs_from(Some(" 4 ")), Some(4));
    }

    #[test]
    fn epoch_gate_releases_exactly_one_party_per_epoch() {
        const PARTIES: usize = 4;
        const EPOCHS: usize = 200;
        let gate = EpochGate::new(PARTIES);
        assert_eq!(gate.parties(), PARTIES);
        let releases = AtomicU64::new(0);
        // A shared value written only by the releaser during its
        // exclusive window and read by everyone next epoch: catches
        // both lost releases and missing happens-before edges.
        let shared = Mutex::new(0usize);
        std::thread::scope(|scope| {
            for _ in 0..PARTIES {
                scope.spawn(|| {
                    for epoch in 0..EPOCHS {
                        if gate.wait() {
                            releases.fetch_add(1, Ordering::Relaxed);
                            *shared.lock().unwrap() = epoch + 1;
                        }
                        gate.wait();
                        assert_eq!(*shared.lock().unwrap(), epoch + 1);
                    }
                });
            }
        });
        // Two waits per epoch, each released exactly once.
        assert_eq!(releases.load(Ordering::Relaxed), EPOCHS as u64);
    }

    #[test]
    fn epoch_gate_single_party_never_blocks() {
        let gate = EpochGate::new(1);
        for _ in 0..10 {
            assert!(gate.wait());
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_on(2, vec![0u32, 1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("item failed");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
