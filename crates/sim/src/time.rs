//! Simulation time base.
//!
//! The simulated machine has two clock domains, as in the paper's Table 3:
//! a 1.5 GHz processor clock and a 150 MHz system (interconnect) clock. All
//! simulation time is kept in **CPU cycles**; [`SystemCycle`] converts to and
//! from the coarser interconnect clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of CPU cycles per system (interconnect) cycle: 1.5 GHz / 150 MHz.
pub const CPU_CYCLES_PER_SYSTEM_CYCLE: u64 = 10;

/// A point in simulated time, measured in CPU clock cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64`s added to it.
///
/// # Examples
///
/// ```
/// use cgct_sim::Cycle;
/// let t = Cycle(100) + 25;
/// assert_eq!(t, Cycle(125));
/// assert_eq!(t - Cycle(100), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Converts this timestamp to nanoseconds assuming the paper's 1.5 GHz
    /// processor clock.
    ///
    /// ```
    /// use cgct_sim::Cycle;
    /// assert_eq!(Cycle(1500).as_nanos(), 1000.0);
    /// ```
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 / 1.5
    }

    /// Rounds this timestamp *up* to the next system-clock edge.
    ///
    /// Requests entering the 150 MHz interconnect domain must wait for a
    /// system clock edge; this models that synchronization delay.
    ///
    /// ```
    /// use cgct_sim::Cycle;
    /// assert_eq!(Cycle(11).align_to_system_clock(), Cycle(20));
    /// assert_eq!(Cycle(20).align_to_system_clock(), Cycle(20));
    /// ```
    pub fn align_to_system_clock(self) -> Cycle {
        let rem = self.0 % CPU_CYCLES_PER_SYSTEM_CYCLE;
        if rem == 0 {
            self
        } else {
            Cycle(self.0 + CPU_CYCLES_PER_SYSTEM_CYCLE - rem)
        }
    }

    /// Saturating subtraction of a duration in cycles.
    pub fn saturating_sub(self, dur: u64) -> Cycle {
        Cycle(self.0.saturating_sub(dur))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Distance between two timestamps, in CPU cycles.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self >= rhs, "time went backwards: {self} - {rhs}");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

/// A duration expressed in system (interconnect) clock cycles.
///
/// The paper quotes interconnect latencies in 150 MHz system cycles
/// (e.g. a 16-system-cycle snoop). This newtype keeps those durations
/// distinct from CPU-cycle durations until the conversion point.
///
/// # Examples
///
/// ```
/// use cgct_sim::SystemCycle;
/// assert_eq!(SystemCycle(16).as_cpu_cycles(), 160);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SystemCycle(pub u64);

impl SystemCycle {
    /// Converts a system-cycle duration to CPU cycles.
    pub fn as_cpu_cycles(self) -> u64 {
        self.0 * CPU_CYCLES_PER_SYSTEM_CYCLE
    }

    /// Converts to nanoseconds at the 150 MHz system clock.
    ///
    /// ```
    /// use cgct_sim::SystemCycle;
    /// // The paper's 16-system-cycle snoop is quoted as 106 ns.
    /// assert!((SystemCycle(16).as_nanos() - 106.0).abs() < 1.0);
    /// ```
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 / 0.15
    }
}

impl fmt::Display for SystemCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}sc", self.0)
    }
}

impl Add for SystemCycle {
    type Output = SystemCycle;
    fn add(self, rhs: SystemCycle) -> SystemCycle {
        SystemCycle(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle(5) + 7;
        assert_eq!(t, Cycle(12));
        let mut u = Cycle(1);
        u += 3;
        assert_eq!(u, Cycle(4));
        assert_eq!(Cycle(10) - Cycle(4), 6);
    }

    #[test]
    fn align_rounds_up_to_system_edge() {
        assert_eq!(Cycle(0).align_to_system_clock(), Cycle(0));
        assert_eq!(Cycle(1).align_to_system_clock(), Cycle(10));
        assert_eq!(Cycle(9).align_to_system_clock(), Cycle(10));
        assert_eq!(Cycle(10).align_to_system_clock(), Cycle(10));
        assert_eq!(Cycle(19).align_to_system_clock(), Cycle(20));
    }

    #[test]
    fn system_cycle_conversion_matches_paper_latencies() {
        // Table 3: snoop latency 106ns = 16 system cycles = 160 CPU cycles.
        assert_eq!(SystemCycle(16).as_cpu_cycles(), 160);
        // DRAM overlapped with snoop: 47ns = 7 system cycles.
        assert!((SystemCycle(7).as_nanos() - 47.0).abs() < 1.0);
        // Remote critical-word transfer: 80ns = 12 system cycles.
        assert!((SystemCycle(12).as_nanos() - 80.0).abs() < 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle(42).to_string(), "42c");
        assert_eq!(SystemCycle(7).to_string(), "7sc");
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        assert_eq!(Cycle(5).saturating_sub(10), Cycle(0));
        assert_eq!(Cycle(15).saturating_sub(10), Cycle(5));
    }
}
