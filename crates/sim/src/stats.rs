//! Statistics collection: counters, histograms, interval (traffic) trackers,
//! and mean / 95% confidence-interval aggregation across perturbed runs.

use crate::time::Cycle;
use std::fmt;

/// A named monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use cgct_sim::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0.0 if `total` is zero).
    pub fn fraction_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online mean / variance accumulator (Welford) with a Student-t 95%
/// confidence interval, used to aggregate the perturbed runs of one
/// benchmark exactly as the paper does for its error bars.
///
/// # Examples
///
/// ```
/// use cgct_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [10.0, 12.0, 11.0, 13.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 11.5).abs() < 1e-9);
/// let ci = s.confidence_interval_95();
/// assert!(ci.low < 11.5 && ci.high > 11.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64, // cgct-lint: allow(D005) report-time cross-run aggregation in canonical run order, not a per-event accumulator
    m2: f64,   // cgct-lint: allow(D005) Welford second moment, report-time only
    min: f64,  // cgct-lint: allow(D005) report-time extremum over canonically ordered runs
    max: f64,  // cgct-lint: allow(D005) report-time extremum over canonically ordered runs
}

/// A symmetric confidence interval `[low, high]` around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64, // cgct-lint: allow(D005) CI bounds are rendered report output, never re-accumulated
    /// Upper bound.
    pub high: f64, // cgct-lint: allow(D005) CI bounds are rendered report output, never re-accumulated
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// Whether `x` lies inside the interval (inclusive).
    // cgct-lint: allow(D005) report-time predicate over an already-rendered interval
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low && x <= self.high
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.low, self.high)
    }
}

impl crate::json::ToJson for ConfidenceInterval {
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::obj([
            ("low", crate::json::Json::f64(self.low)),
            ("high", crate::json::Json::f64(self.high)),
        ])
    }
}

/// Two-sided 97.5% Student-t quantiles for n-1 degrees of freedom (index 1..30),
/// used for 95% confidence intervals over small numbers of runs.
const T_975: [f64; 31] = [
    f64::INFINITY, // 0 dof: undefined
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY, // cgct-lint: allow(D005) empty-accumulator sentinel, not arithmetic
            max: f64::NEG_INFINITY, // cgct-lint: allow(D005) empty-accumulator sentinel, not arithmetic
        }
    }

    /// Adds one observation.
    // cgct-lint: allow(D005) f64 ingress for report-time aggregation; per-event paths use IntStats
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// 95% confidence interval for the mean using the Student-t
    /// distribution, as the paper's error bars do.
    ///
    /// With a single observation the interval degenerates to the point.
    pub fn confidence_interval_95(&self) -> ConfidenceInterval {
        if self.n <= 1 {
            return ConfidenceInterval {
                low: self.mean(),
                high: self.mean(),
            };
        }
        let dof = (self.n - 1) as usize;
        let t = if dof < T_975.len() {
            T_975[dof]
        } else {
            1.96 // normal approximation for large n
        };
        let h = t * self.std_error();
        ConfidenceInterval {
            low: self.mean - h,
            high: self.mean + h,
        }
    }
}

impl Default for RunningStats {
    /// Same as [`RunningStats::new`] (empty accumulator with correct
    /// min/max sentinels).
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Exact integer statistics accumulator in milli-units.
///
/// Per-event accumulation inside a run must be order-independent and
/// exact so that artifacts stay byte-identical across `CGCT_JOBS` /
/// `CGCT_INTRA_JOBS` and across checkpoint/resume. `IntStats` keeps an
/// exact integer sum (i128 — no overflow at any realistic run length)
/// plus min/max, and only converts to `f64` at report time. Samples are
/// in milli-units: a whole-unit sample (a latency in cycles, a line
/// count) is pushed as `value * 1000` via [`IntStats::push_units`].
///
/// # Examples
///
/// ```
/// use cgct_sim::IntStats;
/// let mut s = IntStats::new();
/// s.push_units(10);
/// s.push_units(11);
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.sum_milli(), 21_000);
/// assert_eq!(s.mean_milli(), 10_500);
/// assert!((s.mean() - 10.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntStats {
    n: u64,
    sum_milli: i128,
    min_milli: i64,
    max_milli: i64,
}

impl IntStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        IntStats {
            n: 0,
            sum_milli: 0,
            min_milli: i64::MAX,
            max_milli: i64::MIN,
        }
    }

    /// Adds one observation of `milli` milli-units.
    pub fn push_milli(&mut self, milli: i64) {
        self.n += 1;
        self.sum_milli += milli as i128;
        self.min_milli = self.min_milli.min(milli);
        self.max_milli = self.max_milli.max(milli);
    }

    /// Adds one whole-unit observation (`units * 1000` milli-units).
    pub fn push_units(&mut self, units: u64) {
        self.push_milli((units as i64).saturating_mul(1000));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact sum in milli-units.
    pub fn sum_milli(&self) -> i128 {
        self.sum_milli
    }

    /// Mean in milli-units, rounded half away from zero (0 when empty).
    pub fn mean_milli(&self) -> i64 {
        if self.n == 0 {
            return 0;
        }
        let n = self.n as i128;
        let half = if self.sum_milli >= 0 { n / 2 } else { -(n / 2) };
        ((self.sum_milli + half) / n) as i64
    }

    /// Mean in whole units as `f64`, for report-time formatting only
    /// (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_milli as f64 / self.n as f64 / 1000.0
        }
    }

    /// Smallest observation in milli-units (`None` when empty).
    pub fn min_milli(&self) -> Option<i64> {
        (self.n > 0).then_some(self.min_milli)
    }

    /// Largest observation in milli-units (`None` when empty).
    pub fn max_milli(&self) -> Option<i64> {
        (self.n > 0).then_some(self.max_milli)
    }

    /// Merges another accumulator into this one. Exact and
    /// order-independent: `a.merge(&b)` equals pushing all of `b`'s
    /// samples into `a` in any order.
    pub fn merge(&mut self, other: &IntStats) {
        self.n += other.n;
        self.sum_milli += other.sum_milli;
        self.min_milli = self.min_milli.min(other.min_milli);
        self.max_milli = self.max_milli.max(other.max_milli);
    }
}

impl Default for IntStats {
    /// Same as [`IntStats::new`] (empty accumulator with correct
    /// min/max sentinels).
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Used for e.g. "lines cached per evicted region" (§3.2: 65.1% empty,
/// 17.2% one line, 5.1% two lines).
///
/// # Examples
///
/// ```
/// use cgct_sim::Histogram;
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(0);
/// h.record(2);
/// h.record(99); // clamps into the overflow bucket
/// assert_eq!(h.count(0), 2);
/// assert!((h.fraction(0) - 0.5).abs() < 1e-12);
/// assert_eq!(h.count(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets; values `>= buckets - 1`
    /// land in the last (overflow) bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; buckets],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Count in bucket `idx` (0 for out-of-range indices).
    pub fn count(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Fraction of all samples in bucket `idx`.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(idx) as f64 / self.total as f64
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (overflow bucket counted at its index).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Iterates over `(bucket_index, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate()
    }
}

/// Tracks an event rate over fixed windows of simulated time, reporting both
/// the average rate and the peak window, as Figure 10 does for broadcasts
/// per 100,000 cycles.
///
/// # Examples
///
/// ```
/// use cgct_sim::{Cycle, IntervalTracker};
/// let mut t = IntervalTracker::new(100);
/// for i in 0..50 {
///     t.record(Cycle(i)); // 50 events in window [0, 100)
/// }
/// t.record(Cycle(150)); // 1 event in window [100, 200)
/// t.finish(Cycle(200));
/// assert_eq!(t.peak(), 50);
/// assert!((t.average_per_window() - 25.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalTracker {
    window: u64,
    current_window_start: Cycle,
    current_count: u64,
    peak: u64,
    total_events: u64,
    windows_elapsed: u64,
}

impl IntervalTracker {
    /// Creates a tracker with windows of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "interval window must be positive");
        IntervalTracker {
            window,
            current_window_start: Cycle::ZERO,
            current_count: 0,
            peak: 0,
            total_events: 0,
            windows_elapsed: 0,
        }
    }

    /// Records one event at time `at`. Events must be recorded in
    /// non-decreasing time order.
    pub fn record(&mut self, at: Cycle) {
        self.roll_to(at);
        self.current_count += 1;
        self.total_events += 1;
    }

    /// Closes out the run at `end`, flushing the final (possibly partial)
    /// window into the peak and average figures.
    pub fn finish(&mut self, end: Cycle) {
        self.roll_to(end);
        // Count the in-progress window if it saw any events.
        if self.current_count > 0 {
            self.peak = self.peak.max(self.current_count);
            self.windows_elapsed += 1;
            self.current_count = 0;
        }
    }

    fn roll_to(&mut self, at: Cycle) {
        while at.0 >= self.current_window_start.0 + self.window {
            self.peak = self.peak.max(self.current_count);
            self.current_count = 0;
            self.current_window_start += self.window;
            self.windows_elapsed += 1;
        }
    }

    /// Largest number of events observed in any single window.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total_events
    }

    /// Average events per window across the whole run.
    pub fn average_per_window(&self) -> f64 {
        if self.windows_elapsed == 0 {
            0.0
        } else {
            self.total_events as f64 / self.windows_elapsed as f64
        }
    }
}

mod snap_impls {
    //! [`Snap`](crate::snap::Snap) implementations for the statistics
    //! types. Floats travel as IEEE-754 bit patterns so the empty-
    //! accumulator `±INF` min/max sentinels survive the round trip.

    use super::*;
    use crate::json::Json;
    use crate::snap::{unsnap_field, Snap};

    impl Snap for Counter {
        fn snap(&self) -> Json {
            Json::u64(self.0)
        }
        fn unsnap(v: &Json) -> Result<Self, String> {
            Ok(Counter(v.as_u64().ok_or("expected counter")?))
        }
    }

    impl Snap for RunningStats {
        fn snap(&self) -> Json {
            Json::obj([
                ("n", self.n.snap()),
                ("mean", self.mean.snap()),
                ("m2", self.m2.snap()),
                ("min", self.min.snap()),
                ("max", self.max.snap()),
            ])
        }
        fn unsnap(v: &Json) -> Result<Self, String> {
            Ok(RunningStats {
                n: unsnap_field(v, "n")?,
                mean: unsnap_field(v, "mean")?,
                m2: unsnap_field(v, "m2")?,
                min: unsnap_field(v, "min")?,
                max: unsnap_field(v, "max")?,
            })
        }
    }

    impl Snap for IntStats {
        fn snap(&self) -> Json {
            // The i128 sum travels as a decimal string: JSON numbers in
            // this codebase are u64/i64/f64 and must stay exact.
            Json::obj([
                ("n", self.n.snap()),
                ("sum_milli", Json::str(self.sum_milli.to_string())),
                ("min_milli", self.min_milli.snap()),
                ("max_milli", self.max_milli.snap()),
            ])
        }
        fn unsnap(v: &Json) -> Result<Self, String> {
            let sum_text: String = unsnap_field(v, "sum_milli")?;
            Ok(IntStats {
                n: unsnap_field(v, "n")?,
                sum_milli: sum_text
                    .parse::<i128>()
                    .map_err(|e| format!("bad sum_milli {sum_text:?}: {e}"))?,
                min_milli: unsnap_field(v, "min_milli")?,
                max_milli: unsnap_field(v, "max_milli")?,
            })
        }
    }

    impl Snap for Histogram {
        fn snap(&self) -> Json {
            Json::obj([
                ("buckets", self.buckets.snap()),
                ("total", self.total.snap()),
            ])
        }
        fn unsnap(v: &Json) -> Result<Self, String> {
            let buckets: Vec<u64> = unsnap_field(v, "buckets")?;
            if buckets.is_empty() {
                return Err("histogram needs at least one bucket".to_string());
            }
            Ok(Histogram {
                buckets,
                total: unsnap_field(v, "total")?,
            })
        }
    }

    impl Snap for IntervalTracker {
        fn snap(&self) -> Json {
            Json::obj([
                ("window", self.window.snap()),
                ("start", self.current_window_start.snap()),
                ("count", self.current_count.snap()),
                ("peak", self.peak.snap()),
                ("total", self.total_events.snap()),
                ("windows", self.windows_elapsed.snap()),
            ])
        }
        fn unsnap(v: &Json) -> Result<Self, String> {
            let window: u64 = unsnap_field(v, "window")?;
            if window == 0 {
                return Err("interval window must be positive".to_string());
            }
            Ok(IntervalTracker {
                window,
                current_window_start: unsnap_field(v, "start")?,
                current_count: unsnap_field(v, "count")?,
                peak: unsnap_field(v, "peak")?,
                total_events: unsnap_field(v, "total")?,
                windows_elapsed: unsnap_field(v, "windows")?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn running_stats_mean_and_variance() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn confidence_interval_single_sample_degenerates() {
        let mut s = RunningStats::new();
        s.push(5.0);
        let ci = s.confidence_interval_95();
        assert_eq!(ci.low, 5.0);
        assert_eq!(ci.high, 5.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn confidence_interval_contains_true_mean_for_identical_samples() {
        let mut s = RunningStats::new();
        for _ in 0..5 {
            s.push(3.0);
        }
        let ci = s.confidence_interval_95();
        assert!(ci.contains(3.0));
        assert!(ci.half_width() < 1e-12);
    }

    #[test]
    fn confidence_interval_known_value() {
        // n=4, mean=11.5, sd=sqrt(5/3), se=sd/2, t(3)=3.182.
        let s: RunningStats = [10.0, 12.0, 11.0, 13.0].into_iter().collect();
        let ci = s.confidence_interval_95();
        let expected_half = 3.182 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((ci.half_width() - expected_half).abs() < 1e-9);
    }

    #[test]
    fn confidence_interval_large_n_uses_normal_quantile() {
        let mut s = RunningStats::new();
        for i in 0..100 {
            s.push(i as f64 % 2.0);
        }
        let ci = s.confidence_interval_95();
        let expected_half = 1.96 * s.std_error();
        assert!((ci.half_width() - expected_half).abs() < 1e-9);
    }

    #[test]
    fn int_stats_exact_mean_and_extrema() {
        let mut s = IntStats::new();
        for v in [10u64, 12, 11, 13] {
            s.push_units(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum_milli(), 46_000);
        assert_eq!(s.mean_milli(), 11_500);
        assert!((s.mean() - 11.5).abs() < 1e-12);
        assert_eq!(s.min_milli(), Some(10_000));
        assert_eq!(s.max_milli(), Some(13_000));
    }

    #[test]
    fn int_stats_empty() {
        let s = IntStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_milli(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min_milli(), None);
        assert_eq!(s.max_milli(), None);
    }

    #[test]
    fn int_stats_rounds_half_away_from_zero() {
        let mut s = IntStats::new();
        s.push_milli(1);
        s.push_milli(2); // mean 1.5 milli
        assert_eq!(s.mean_milli(), 2);
        let mut t = IntStats::new();
        t.push_milli(-1);
        t.push_milli(-2);
        assert_eq!(t.mean_milli(), -2);
    }

    #[test]
    fn int_stats_merge_is_order_independent() {
        let samples = [5u64, 900, 3, 77, 77, 0];
        let mut whole = IntStats::new();
        for v in samples {
            whole.push_units(v);
        }
        let mut left = IntStats::new();
        let mut right = IntStats::new();
        for v in &samples[..2] {
            left.push_units(*v);
        }
        for v in &samples[2..] {
            right.push_units(*v);
        }
        let mut merged = right; // reversed merge order
        merged.merge(&left);
        assert_eq!(merged, whole);
    }

    #[test]
    fn int_stats_merge_with_empty_is_identity() {
        let mut s = IntStats::new();
        s.push_units(42);
        let before = s;
        s.merge(&IntStats::new());
        assert_eq!(s, before);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(3);
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 3); // 2, 3, 1000 clamp to last bucket
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(10);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn interval_tracker_peak_and_average() {
        let mut t = IntervalTracker::new(10);
        // Window 0: 3 events; window 1: 1 event; window 2: 5 events.
        for at in [0, 5, 9] {
            t.record(Cycle(at));
        }
        t.record(Cycle(12));
        for at in [20, 21, 22, 23, 24] {
            t.record(Cycle(at));
        }
        t.finish(Cycle(30));
        assert_eq!(t.peak(), 5);
        assert_eq!(t.total(), 9);
        assert!((t.average_per_window() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn interval_tracker_empty_run() {
        let mut t = IntervalTracker::new(100);
        t.finish(Cycle(1000));
        assert_eq!(t.peak(), 0);
        assert_eq!(t.average_per_window(), 0.0);
    }

    #[test]
    fn interval_tracker_events_far_apart() {
        let mut t = IntervalTracker::new(10);
        t.record(Cycle(0));
        t.record(Cycle(1_000));
        t.finish(Cycle(1_010));
        assert_eq!(t.peak(), 1);
        assert_eq!(t.total(), 2);
    }
}
