//! Minimal in-tree JSON: a value type, an emitter, and a parser.
//!
//! The workspace serializes only two things — `Uop` trace lines and
//! experiment reports — so this module implements exactly the JSON subset
//! they need (RFC 8259 values, `\uXXXX` escapes, integer-exact `u64`/`i64`
//! numbers) with zero external crates.
//!
//! # Examples
//!
//! ```
//! use cgct_sim::json::Json;
//!
//! let v = Json::parse(r#"{"pc": 4, "kind": "IntAlu"}"#).unwrap();
//! assert_eq!(v.get("pc").and_then(Json::as_u64), Some(4));
//! assert_eq!(v.get("kind").and_then(Json::as_str), Some("IntAlu"));
//! assert_eq!(v.dump(), r#"{"pc":4,"kind":"IntAlu"}"#);
//! ```
//!
//! Integers round-trip exactly — they are never squeezed through `f64`,
//! so a full 64-bit address survives emit → parse bit-for-bit (an `f64`
//! would lose everything past 2^53):
//!
//! ```
//! use cgct_sim::json::Json;
//!
//! let addr = u64::MAX - 1; // not representable as f64
//! let text = Json::u64(addr).dump();
//! assert_eq!(text, "18446744073709551614");
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.as_u64(), Some(addr));
//! ```

use std::fmt;

/// A JSON number, kept integer-exact where possible.
///
/// `u64`/`i64` values survive a round-trip bit-exactly instead of being
/// squeezed through `f64` (addresses can exceed 2^53).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Anything with a fraction or exponent.
    F(f64),
}

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// maps); duplicate keys keep the first occurrence on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Wraps a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(Num::U(v))
    }

    /// Wraps an `i64` (normalized to [`Num::U`] when non-negative).
    pub fn i64(v: i64) -> Json {
        if v >= 0 {
            Json::Num(Num::U(v as u64))
        } else {
            Json::Num(Num::I(v))
        }
    }

    /// Wraps an `f64` (normalized to an integer variant when exact).
    pub fn f64(v: f64) -> Json {
        if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 {
            Json::Num(Num::U(v as u64))
        } else if v.fract() == 0.0 && v >= i64::MIN as f64 && v < 0.0 {
            Json::Num(Num::I(v as i64))
        } else {
            Json::Num(Num::F(v))
        }
    }

    /// Wraps a string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (first occurrence), else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(Num::U(v)) => Some(*v),
            Json::Num(Num::F(f)) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(Num::U(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            Json::Num(Num::I(v)) => Some(*v),
            Json::Num(Num::F(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(Num::U(v)) => Some(*v as f64),
            Json::Num(Num::I(v)) => Some(*v as f64),
            Json::Num(Num::F(v)) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Num::U(v)) => out.push_str(&v.to_string()),
            Json::Num(Num::I(v)) => out.push_str(&v.to_string()),
            Json::Num(Num::F(v)) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing `.0` so floats re-parse as floats.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parses one JSON value from `text` (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Copy one UTF-8 character verbatim, validating only
                    // its own bytes (validating the whole remaining input
                    // per character would make parsing quadratic).
                    if b < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Num::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Json::Num(Num::F(v)))
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

/// Conversion into a [`Json`] value, for report dumping.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Num::F(*self))
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::u64(*self as u64)
            }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::i64(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn large_u64_is_exact() {
        let v = Json::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.dump(), u64::MAX.to_string());
        let neg = Json::parse(&i64::MIN.to_string()).unwrap();
        assert_eq!(neg.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a":[1,2,3],"b":{"c":true,"d":null},"e":"x\"y"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.dump(), text);
        assert_eq!(Json::parse(&v.dump_pretty()).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""line\nbreak A 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak A 😀"));
        // Control characters and quotes are escaped on output.
        assert_eq!(Json::str("a\"b\n\u{1}").dump(), "\"a\\\"b\\n\\u0001\"");
        let round = Json::parse(&Json::str("a\"b\n\u{1}😀").dump()).unwrap();
        assert_eq!(round.as_str(), Some("a\"b\n\u{1}😀"));
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Json::Num(Num::F(2.0));
        assert_eq!(v.dump(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap().as_f64(), Some(2.0));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn errors_carry_position() {
        for (text, offset) in [("", 0), ("[1,]", 3), ("{\"a\" 1}", 5), ("tru", 0)] {
            let e = Json::parse(text).unwrap_err();
            assert_eq!(e.offset, offset, "offset for {text:?}: {e}");
        }
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
        assert!(Json::parse("\"\u{1}\"").is_err(), "raw control char");
    }

    #[test]
    fn builders_and_accessors() {
        let v = Json::obj([
            ("n", Json::u64(3)),
            ("s", Json::str("x")),
            ("a", vec![1u32, 2].to_json()),
        ]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::i64(-2).as_i64(), Some(-2));
        assert_eq!(Json::f64(3.0).as_u64(), Some(3));
        assert_eq!(Json::f64(-4.0).as_i64(), Some(-4));
    }

    #[test]
    fn nonfinite_floats_dump_as_null() {
        assert_eq!(Json::Num(Num::F(f64::NAN)).dump(), "null");
        assert_eq!(Json::Num(Num::F(f64::INFINITY)).dump(), "null");
    }
}
