//! Deterministic state serialization for checkpoint/restore.
//!
//! [`Snap`] is the workspace's snapshot trait: a value renders its state
//! as a [`Json`] tree (`snap`) and is reconstructed exactly from that
//! tree (`unsnap`). Snapshots must be *bit-exact round trips* — restoring
//! a snapshot and snapshotting again yields the identical JSON — because
//! the checkpoint/resume machinery (see `cgct_system`) asserts that a
//! resumed simulation byte-equals an uninterrupted one.
//!
//! Two encoding rules keep that guarantee:
//!
//! - **Floats are stored as IEEE-754 bit patterns** (`u64`), never as
//!   decimal JSON numbers. [`Json::f64`] normalizes integral floats and
//!   drops non-finite values, so a textual float would not round-trip
//!   `-0.0`, `±INF` (the empty-[`RunningStats`](crate::RunningStats)
//!   sentinels), or `NaN`. Use [`snap_f64_bits`]/[`unsnap_f64_bits`].
//! - **`Option` wraps `Some` in a one-element array** (`None` is `null`),
//!   so `Some(())` — whose payload snaps to `null` — stays distinguishable
//!   from `None`.
//!
//! # Examples
//!
//! ```
//! use cgct_sim::snap::Snap;
//!
//! let v: Vec<Option<u64>> = vec![Some(3), None];
//! let json = v.snap();
//! assert_eq!(Vec::<Option<u64>>::unsnap(&json).unwrap(), v);
//! ```

use crate::json::Json;
use crate::time::{Cycle, SystemCycle};
use std::collections::VecDeque;

/// Bit-exact JSON snapshot and restore.
///
/// Implementations live next to the type they serialize (private fields
/// stay private); `unsnap(&x.snap())` must reconstruct a value whose
/// subsequent `snap()` is identical JSON.
pub trait Snap: Sized {
    /// Renders this value's state as JSON.
    fn snap(&self) -> Json;

    /// Reconstructs a value from [`snap`](Snap::snap) output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch (missing
    /// field, wrong JSON type, out-of-range payload).
    fn unsnap(v: &Json) -> Result<Self, String>;
}

/// Encodes an `f64` as its IEEE-754 bit pattern (round-trips `-0.0`,
/// `±INF`, and `NaN`, which textual JSON floats cannot).
pub fn snap_f64_bits(v: f64) -> Json {
    Json::u64(v.to_bits())
}

/// Decodes an `f64` stored by [`snap_f64_bits`].
///
/// # Errors
///
/// Fails if `v` is not a `u64`.
pub fn unsnap_f64_bits(v: &Json) -> Result<f64, String> {
    Ok(f64::from_bits(
        v.as_u64().ok_or("expected f64 bit pattern (u64)")?,
    ))
}

/// Looks up a required object member.
///
/// # Errors
///
/// Fails if `v` is not an object or lacks `key`.
pub fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Unsnaps a required object member in one step.
///
/// # Errors
///
/// Fails if the member is missing or its payload does not unsnap.
pub fn unsnap_field<T: Snap>(v: &Json, key: &str) -> Result<T, String> {
    T::unsnap(field(v, key)?).map_err(|e| format!("field '{key}': {e}"))
}

/// The elements of a JSON array.
///
/// # Errors
///
/// Fails if `v` is not an array.
pub fn elements(v: &Json) -> Result<&[Json], String> {
    v.as_array().ok_or_else(|| "expected array".to_string())
}

macro_rules! impl_snap_uint {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn snap(&self) -> Json {
                Json::u64(*self as u64)
            }
            fn unsnap(v: &Json) -> Result<Self, String> {
                let raw = v.as_u64().ok_or(concat!("expected ", stringify!($t)))?;
                <$t>::try_from(raw)
                    .map_err(|_| format!("{raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_snap_uint!(u8, u16, u32, u64, usize);

impl Snap for i64 {
    fn snap(&self) -> Json {
        Json::i64(*self)
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        v.as_i64().ok_or_else(|| "expected i64".to_string())
    }
}

impl Snap for bool {
    fn snap(&self) -> Json {
        Json::Bool(*self)
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| "expected bool".to_string())
    }
}

impl Snap for f64 {
    fn snap(&self) -> Json {
        snap_f64_bits(*self)
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        unsnap_f64_bits(v)
    }
}

impl Snap for String {
    fn snap(&self) -> Json {
        Json::Str(self.clone())
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| "expected string".to_string())
    }
}

impl Snap for () {
    fn snap(&self) -> Json {
        Json::Null
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(()),
            _ => Err("expected null".to_string()),
        }
    }
}

impl Snap for Cycle {
    fn snap(&self) -> Json {
        Json::u64(self.0)
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        Ok(Cycle(v.as_u64().ok_or("expected cycle")?))
    }
}

impl Snap for SystemCycle {
    fn snap(&self) -> Json {
        Json::u64(self.0)
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        Ok(SystemCycle(v.as_u64().ok_or("expected system cycle")?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self) -> Json {
        match self {
            // A one-element array keeps `Some(())` (payload `null`)
            // distinguishable from `None`.
            Some(x) => Json::Array(vec![x.snap()]),
            None => Json::Null,
        }
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(None),
            Json::Array(items) if items.len() == 1 => Ok(Some(T::unsnap(&items[0])?)),
            _ => Err("expected null or one-element array".to_string()),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self) -> Json {
        Json::Array(self.iter().map(Snap::snap).collect())
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        elements(v)?
            .iter()
            .enumerate()
            .map(|(i, x)| T::unsnap(x).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self) -> Json {
        Json::Array(self.iter().map(Snap::snap).collect())
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        Ok(Vec::<T>::unsnap(v)?.into())
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self) -> Json {
        Json::Array(vec![self.0.snap(), self.1.snap()])
    }
    fn unsnap(v: &Json) -> Result<Self, String> {
        let items = elements(v)?;
        if items.len() != 2 {
            return Err(format!("expected pair, got {} elements", items.len()));
        }
        Ok((A::unsnap(&items[0])?, B::unsnap(&items[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let json = v.snap();
        // Through text too: the checkpoint file is parsed JSON.
        let reparsed = Json::parse(&json.dump()).unwrap();
        assert_eq!(T::unsnap(&reparsed).unwrap(), v);
        assert_eq!(T::unsnap(&reparsed).unwrap().snap(), json, "idempotent");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(String::from("hi"));
        roundtrip(());
        roundtrip(Cycle(17));
        roundtrip(SystemCycle(3));
    }

    #[test]
    fn floats_are_bit_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let json = v.snap();
            let back = f64::unsnap(&Json::parse(&json.dump()).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        let nan = f64::unsnap(&f64::NAN.snap()).unwrap();
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn options_disambiguate_unit() {
        roundtrip(Some(()));
        roundtrip(Option::<()>::None);
        roundtrip(Some(5u64));
        assert_ne!(Some(()).snap(), Option::<()>::None.snap());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(VecDeque::from([Some(1u32), None]));
        roundtrip((Cycle(4), 9u64));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::unsnap(&Json::u64(300)).is_err());
        assert!(u64::unsnap(&Json::str("x")).is_err());
        assert!(<(u8, u8)>::unsnap(&Json::Array(vec![Json::u64(1)])).is_err());
        assert!(unsnap_field::<u64>(&Json::obj([("a", Json::u64(1))]), "b").is_err());
    }
}
