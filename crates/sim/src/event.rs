//! A deterministic discrete-event queue.
//!
//! Events scheduled for the same timestamp are delivered in scheduling order
//! (FIFO), which keeps the simulation deterministic regardless of heap
//! internals.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events.
///
/// `E` is the payload type; the queue imposes no trait bounds on it beyond
/// what the standard heap needs internally (none — ordering uses only the
/// timestamp and a monotonically increasing sequence number).
///
/// # Examples
///
/// ```
/// use cgct_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(3), 'b');
/// q.schedule(Cycle(3), 'c'); // same time: FIFO order
/// q.schedule(Cycle(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            payload,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Later events are left in place.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.next_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: crate::snap::Snap> crate::snap::Snap for EventQueue<E> {
    /// Entries are emitted sorted by `(time, seq)` — `BinaryHeap`
    /// iteration order is arbitrary and must not leak into the snapshot —
    /// and each entry keeps its exact sequence number so FIFO tie-breaks
    /// replay identically after restore.
    fn snap(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.key.0);
        Json::obj([
            ("next_seq", Json::u64(self.next_seq)),
            (
                "entries",
                Json::Array(
                    entries
                        .iter()
                        .map(|e| {
                            Json::Array(vec![
                                Json::u64(e.key.0 .0 .0),
                                Json::u64(e.key.0 .1),
                                e.payload.snap(),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn unsnap(v: &crate::json::Json) -> Result<Self, String> {
        use crate::snap::{elements, field, unsnap_field};
        let mut q = EventQueue::new();
        q.next_seq = unsnap_field(v, "next_seq")?;
        for (i, item) in elements(field(v, "entries")?)?.iter().enumerate() {
            let parts = elements(item)?;
            if parts.len() != 3 {
                return Err(format!("entry [{i}]: expected [time, seq, payload]"));
            }
            let at = Cycle(parts[0].as_u64().ok_or("entry time must be u64")?);
            let seq = parts[1].as_u64().ok_or("entry seq must be u64")?;
            if seq >= q.next_seq {
                return Err(format!("entry [{i}]: seq {seq} >= next_seq"));
            }
            q.heap.push(Entry {
                key: Reverse((at, seq)),
                payload: E::unsnap(&parts[2]).map_err(|e| format!("entry [{i}]: {e}"))?,
            });
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 'x');
        assert_eq!(q.pop_due(Cycle(9)), None);
        assert_eq!(q.pop_due(Cycle(10)), Some((Cycle(10), 'x')));
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(Cycle(7), ());
        assert_eq!(q.next_time(), Some(Cycle(7)));
        assert_eq!(q.len(), 1);
    }

    /// FIFO seq-stability must hold under *interleaved* schedule/pop —
    /// not just batch-then-drain. Popping (which mutates heap
    /// internals) between schedules of equal timestamps must never
    /// reorder them, and `pop_due` must agree with a stable-sort model.
    #[test]
    fn fifo_stable_under_interleaved_schedule_and_pop() {
        use crate::check::check;

        check(
            "event::fifo_stable_under_interleaved_schedule_and_pop",
            128,
            |g| {
                let mut q = EventQueue::new();
                // Reference model: (time, insertion index), kept in a Vec;
                // the earliest event is the stable minimum by time.
                let mut model: Vec<(Cycle, u64)> = Vec::new();
                let mut next_id = 0u64;
                let ops = g.gen_range(1usize..200);
                let mut now = Cycle(0);
                for _ in 0..ops {
                    match g.gen_range(0u64..4) {
                        // Schedule at a time in a small window (collisions
                        // are the interesting case).
                        0 | 1 => {
                            let at = Cycle(g.gen_range(0u64..8));
                            q.schedule(at, next_id);
                            model.push((at, next_id));
                            next_id += 1;
                        }
                        // Unconditional pop.
                        2 => {
                            let got = q.pop();
                            let want = model
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(t, id))| (t, id))
                                .map(|(i, _)| i);
                            match (got, want) {
                                (None, None) => {}
                                (Some((t, id)), Some(i)) => {
                                    assert_eq!((t, id), model.remove(i));
                                }
                                (got, want) => panic!("pop {got:?} vs model {want:?}"),
                            }
                        }
                        // pop_due at a (non-decreasing) deadline.
                        _ => {
                            now = Cycle(now.0 + g.gen_range(0u64..3));
                            let got = q.pop_due(now);
                            let want = model
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(t, id))| (t, id))
                                .filter(|(_, &(t, _))| t <= now)
                                .map(|(i, _)| i);
                            match (got, want) {
                                (None, None) => {}
                                (Some((t, id)), Some(i)) => {
                                    assert_eq!((t, id), model.remove(i));
                                }
                                (got, want) => panic!("pop_due {got:?} vs model {want:?}"),
                            }
                        }
                    }
                }
                // Drain: remaining events come out in stable (time, seq) order.
                model.sort_by_key(|&(t, id)| (t, id));
                for expected in model {
                    assert_eq!(q.pop(), Some(expected));
                }
                assert_eq!(q.pop(), None);
            },
        );
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(1), 0u8);
        q.schedule(Cycle(2), 1u8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
