//! Discrete-event simulation kernel for the CGCT reproduction.
//!
//! This crate provides the time base, event queue, deterministic random
//! number utilities, statistics machinery, and the deterministic thread
//! pool ([`pool`]) shared by every other crate in the workspace. It is
//! deliberately free of any coherence-specific logic so that the cache,
//! interconnect, and CPU models can be tested in isolation.
//!
//! # Examples
//!
//! ```
//! use cgct_sim::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Cycle(10), "snoop response");
//! q.schedule(Cycle(5), "dram ready");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Cycle(5), "dram ready"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod check;
pub mod event;
pub mod hash;
pub mod json;
pub mod pool;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use json::{Json, ToJson};
pub use rng::{SeedSequence, Xoshiro256pp};
pub use snap::Snap;
pub use stats::{ConfidenceInterval, Counter, Histogram, IntStats, IntervalTracker, RunningStats};
pub use time::{Cycle, SystemCycle, CPU_CYCLES_PER_SYSTEM_CYCLE};
