//! Property tests for the statistics kernel: Welford accumulation against
//! naive two-pass computation, and interval-tracker conservation laws.

use cgct_sim::{Cycle, IntervalTracker, RunningStats, SeedSequence};
use proptest::prelude::*;

proptest! {
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn confidence_interval_is_centered_and_ordered(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100)
    ) {
        let s: RunningStats = xs.iter().copied().collect();
        let ci = s.confidence_interval_95();
        prop_assert!(ci.low <= ci.high);
        let center = (ci.low + ci.high) / 2.0;
        prop_assert!((center - s.mean()).abs() < 1e-9 * (1.0 + s.mean().abs()));
        prop_assert!(ci.contains(s.mean()));
    }

    #[test]
    fn interval_tracker_conserves_events(
        window in 1u64..1000,
        mut times in prop::collection::vec(0u64..100_000, 1..200),
    ) {
        times.sort_unstable();
        let mut t = IntervalTracker::new(window);
        for &at in &times {
            t.record(Cycle(at));
        }
        let end = *times.last().unwrap() + 1;
        t.finish(Cycle(end));
        // Conservation: total recorded equals input count.
        prop_assert_eq!(t.total(), times.len() as u64);
        // The peak is at least the busiest window's true count and at
        // most the total.
        prop_assert!(t.peak() >= 1);
        prop_assert!(t.peak() <= t.total());
        // Average x windows ~= total.
        let windows = end.div_ceil(window).max(1);
        let reconstructed = t.average_per_window() * windows as f64;
        prop_assert!((reconstructed - times.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn interval_tracker_peak_matches_brute_force(
        window in 1u64..100,
        mut times in prop::collection::vec(0u64..2_000, 1..150),
    ) {
        times.sort_unstable();
        let mut t = IntervalTracker::new(window);
        for &at in &times {
            t.record(Cycle(at));
        }
        let end = *times.last().unwrap() + 1;
        t.finish(Cycle(end));
        // Brute-force per-window counts over aligned windows.
        let mut best = 0u64;
        let mut w = 0;
        while w <= *times.last().unwrap() {
            let c = times.iter().filter(|&&x| x >= w && x < w + window).count() as u64;
            best = best.max(c);
            w += window;
        }
        prop_assert_eq!(t.peak(), best);
    }

    #[test]
    fn seed_streams_do_not_collide_within_root(root in any::<u64>()) {
        let seq = SeedSequence::new(root);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            prop_assert!(seen.insert(seq.stream(i)), "collision at stream {i}");
        }
    }
}
