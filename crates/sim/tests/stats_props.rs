//! Property tests for the statistics kernel: Welford accumulation against
//! naive two-pass computation, and interval-tracker conservation laws.

#![allow(clippy::disallowed_types)]
// ^ D002 mirror (clippy.toml): test code is exempt by policy

use cgct_sim::check::{check, gen_vec};
use cgct_sim::{Cycle, IntervalTracker, RunningStats, SeedSequence};

fn gen_f64_in(g: &mut cgct_sim::Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + g.gen_f64() * (hi - lo)
}

#[test]
fn welford_matches_two_pass() {
    check("stats::welford_matches_two_pass", 64, |g| {
        let xs = gen_vec(g, 1..200, |g| gen_f64_in(g, -1e6, 1e6));
        let s: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
        assert_eq!(s.count(), xs.len() as u64);
    });
}

#[test]
fn confidence_interval_is_centered_and_ordered() {
    check(
        "stats::confidence_interval_is_centered_and_ordered",
        64,
        |g| {
            let xs = gen_vec(g, 2..100, |g| gen_f64_in(g, -1e3, 1e3));
            let s: RunningStats = xs.iter().copied().collect();
            let ci = s.confidence_interval_95();
            assert!(ci.low <= ci.high);
            let center = (ci.low + ci.high) / 2.0;
            assert!((center - s.mean()).abs() < 1e-9 * (1.0 + s.mean().abs()));
            assert!(ci.contains(s.mean()));
        },
    );
}

#[test]
fn interval_tracker_conserves_events() {
    check("stats::interval_tracker_conserves_events", 64, |g| {
        let window = g.gen_range(1u64..1000);
        let mut times = gen_vec(g, 1..200, |g| g.gen_range(0u64..100_000));
        times.sort_unstable();
        let mut t = IntervalTracker::new(window);
        for &at in &times {
            t.record(Cycle(at));
        }
        let end = *times.last().unwrap() + 1;
        t.finish(Cycle(end));
        // Conservation: total recorded equals input count.
        assert_eq!(t.total(), times.len() as u64);
        // The peak is at least the busiest window's true count and at
        // most the total.
        assert!(t.peak() >= 1);
        assert!(t.peak() <= t.total());
        // Average x windows ~= total.
        let windows = end.div_ceil(window).max(1);
        let reconstructed = t.average_per_window() * windows as f64;
        assert!((reconstructed - times.len() as f64).abs() < 1e-6);
    });
}

#[test]
fn interval_tracker_peak_matches_brute_force() {
    check(
        "stats::interval_tracker_peak_matches_brute_force",
        64,
        |g| {
            let window = g.gen_range(1u64..100);
            let mut times = gen_vec(g, 1..150, |g| g.gen_range(0u64..2_000));
            times.sort_unstable();
            let mut t = IntervalTracker::new(window);
            for &at in &times {
                t.record(Cycle(at));
            }
            let end = *times.last().unwrap() + 1;
            t.finish(Cycle(end));
            // Brute-force per-window counts over aligned windows.
            let mut best = 0u64;
            let mut w = 0;
            while w <= *times.last().unwrap() {
                let c = times.iter().filter(|&&x| x >= w && x < w + window).count() as u64;
                best = best.max(c);
                w += window;
            }
            assert_eq!(t.peak(), best);
        },
    );
}

#[test]
fn seed_streams_do_not_collide_within_root() {
    check("stats::seed_streams_do_not_collide_within_root", 64, |g| {
        let root = g.next_u64();
        let seq = SeedSequence::new(root);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            assert!(seen.insert(seq.stream(i)), "collision at stream {i}");
        }
    });
}
