#!/usr/bin/env bash
# A/B benchmark of the event-driven execution loop against the
# cycle-stepped reference (see DESIGN.md, "Time advancement").
#
# Runs `experiments all --quick` on one worker (CGCT_JOBS=1) with
# pinned seeds — once with cycle skipping (the default), once with
# --no-skip, once with request-lifetime tracing on (CGCT_TRACE=1) —
# byte-compares every figure artifact between the runs, and writes
# BENCH_cgct.json with wall-clock seconds, simulated cycles/sec, the
# speedup ratio, and the tracing overhead ratio. The ratios are only
# reported if the artifacts are byte-identical: they must be the cost
# of simulating the *same* machine trajectory, not a different one.
# Tracing overhead above 15% fails the run.
#
# A fourth A/B leg benchmarks intra-run parallelism: the conservative
# epoch engine on four workers (CGCT_INTRA_JOBS=4) against the same
# engine on one worker (--intra-serial). These two are byte-compared
# against *each other* — the epoch engine is a documented model variant
# (DESIGN.md, "Concurrency & determinism model"), so its artifacts are
# not expected to match the legacy engine's — and the intra speedup is
# refused unless they are byte-identical.
#
# A fifth leg benchmarks the content-addressed result cache: the same
# command cold (fresh cache dir, every cell simulated and stored) and
# warm (every cell restored from disk). The warm/cold ratio is refused
# unless the two runs' artifacts are byte-identical, and a warm re-run
# slower than 10x cold fails the run. All other legs run with
# CGCT_CACHE=0 so repeated legs measure simulation, not the cache.
#
# Usage: scripts/bench.sh [output.json]
#   CGCT_BENCH_CMD=fig7  restrict to one command (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_cgct.json}"
cmd="${CGCT_BENCH_CMD:-all}"
# The intra leg's effective worker count is min(4, host CPUs): the
# epoch engine clamps the env-derived count to available parallelism
# (byte-identical output either way), so record the host so the ratio
# can be read in context — on a single-CPU host the honest expectation
# is ~1.0, not a speedup.
host_cpus="$(nproc 2>/dev/null || echo 1)"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build (release, offline) =="
cargo build --release -p cgct-bench --offline

bin=target/release/experiments

run_mode() { # $1 = skip|noskip, extra flag in $2 (may be empty)
    local tag="$1" flag="${2:-}"
    mkdir -p "$workdir/$tag"
    local t0 t1
    t0=$(date +%s%N)
    # Cache off unless the caller (the cache leg) turns it on: every
    # other leg must measure simulation, not disk reads.
    # shellcheck disable=SC2086
    CGCT_JOBS=1 CGCT_CACHE="${CGCT_CACHE:-0}" "$bin" "$cmd" --quick $flag \
        --json "$workdir/$tag" \
        > "$workdir/$tag.md" 2> "$workdir/$tag.log"
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 )) # milliseconds
}

echo "== $cmd --quick, event-driven loop (CGCT_JOBS=1) =="
skip_ms=$(run_mode skip "")
echo "   ${skip_ms} ms"

echo "== $cmd --quick, cycle-stepped reference (--no-skip) =="
noskip_ms=$(run_mode noskip "--no-skip")
echo "   ${noskip_ms} ms"

echo "== $cmd --quick, request-lifetime tracing on (CGCT_TRACE=1) =="
traced_ms=$(CGCT_TRACE=1 run_mode traced "")
echo "   ${traced_ms} ms"

echo "== $cmd --quick, epoch engine on one worker (--intra-serial) =="
intraserial_ms=$(run_mode intraserial "--intra-serial")
echo "   ${intraserial_ms} ms"

echo "== $cmd --quick, epoch engine on 4 workers (CGCT_INTRA_JOBS=4) =="
intrapar_ms=$(CGCT_INTRA_JOBS=4 run_mode intrapar "")
echo "   ${intrapar_ms} ms"

echo "== $cmd --quick, result cache cold (fresh dir) =="
cachecold_ms=$(CGCT_CACHE=1 CGCT_CACHE_DIR="$workdir/cache_entries" run_mode cachecold "")
echo "   ${cachecold_ms} ms"

echo "== $cmd --quick, result cache warm (all cells restored) =="
cachewarm_ms=$(CGCT_CACHE=1 CGCT_CACHE_DIR="$workdir/cache_entries" run_mode cachewarm "")
echo "   ${cachewarm_ms} ms"

echo "== comparing artifacts =="
identical=true
for f in "$workdir"/skip/*.json; do
    name="$(basename "$f")"
    [ "$name" = timing.json ] && continue # wall times differ by design
    for other in noskip traced; do
        if ! cmp -s "$f" "$workdir/$other/$name"; then
            echo "MISMATCH: $name differs between skip and $other"
            identical=false
        fi
    done
done
for other in noskip traced; do
    if ! cmp -s "$workdir/skip.md" "$workdir/$other.md"; then
        echo "MISMATCH: report markdown differs between skip and $other"
        identical=false
    fi
done
if [ "$identical" != true ]; then
    echo "bench.sh: FAILED — modes disagree; ratios would be meaningless" >&2
    exit 1
fi
echo "   all artifacts byte-identical"

echo "== comparing intra-run artifacts (4 workers vs --intra-serial) =="
intra_identical=true
for f in "$workdir"/intraserial/*.json; do
    name="$(basename "$f")"
    [ "$name" = timing.json ] && continue # wall times differ by design
    if ! cmp -s "$f" "$workdir/intrapar/$name"; then
        echo "MISMATCH: $name differs between intraserial and intrapar"
        intra_identical=false
    fi
done
if ! cmp -s "$workdir/intraserial.md" "$workdir/intrapar.md"; then
    echo "MISMATCH: report markdown differs between intraserial and intrapar"
    intra_identical=false
fi
if [ "$intra_identical" != true ]; then
    echo "bench.sh: FAILED — epoch engine diverged across worker counts; the intra speedup would be meaningless" >&2
    exit 1
fi
echo "   intra-run artifacts byte-identical across worker counts"

echo "== comparing cache-leg artifacts (warm vs cold vs uncached) =="
cache_identical=true
for f in "$workdir"/cachecold/*.json; do
    name="$(basename "$f")"
    [ "$name" = timing.json ] && continue # wall times and hit flags differ
    if ! cmp -s "$f" "$workdir/cachewarm/$name"; then
        echo "MISMATCH: $name differs between cachecold and cachewarm"
        cache_identical=false
    fi
    # The cached runs use the same engine as the uncached skip leg, so
    # their artifacts must match it too.
    if ! cmp -s "$f" "$workdir/skip/$name"; then
        echo "MISMATCH: $name differs between cachecold and skip"
        cache_identical=false
    fi
done
if ! cmp -s "$workdir/cachecold.md" "$workdir/cachewarm.md"; then
    echo "MISMATCH: report markdown differs between cachecold and cachewarm"
    cache_identical=false
fi
if [ "$cache_identical" != true ]; then
    echo "bench.sh: FAILED — cached runs disagree; the cache speedup would be meaningless" >&2
    exit 1
fi
echo "   cache-leg artifacts byte-identical"

# total_sim_cycles and total_mem_events are identical in both runs
# (same trajectory); read them from the skip run's timing.json.
sim_cycles=$(grep -o '"total_sim_cycles": [0-9]*' "$workdir/skip/timing.json" \
    | head -1 | grep -o '[0-9]*')
sim_cycles=${sim_cycles:-0}
mem_events=$(grep -o '"total_mem_events": [0-9]*' "$workdir/skip/timing.json" \
    | head -1 | grep -o '[0-9]*')
mem_events=${mem_events:-0}

# Fixed-point arithmetic (no bc in the image): x1000 for three decimals.
speedup_milli=$(( noskip_ms * 1000 / (skip_ms > 0 ? skip_ms : 1) ))
skip_cps=$(( sim_cycles * 1000 / (skip_ms > 0 ? skip_ms : 1) ))
noskip_cps=$(( sim_cycles * 1000 / (noskip_ms > 0 ? noskip_ms : 1) ))
skip_eps=$(( mem_events * 1000 / (skip_ms > 0 ? skip_ms : 1) ))
trace_overhead_milli=$(( traced_ms * 1000 / (skip_ms > 0 ? skip_ms : 1) ))
intra_speedup_milli=$(( intraserial_ms * 1000 / (intrapar_ms > 0 ? intrapar_ms : 1) ))
cache_speedup_milli=$(( cachecold_ms * 1000 / (cachewarm_ms > 0 ? cachewarm_ms : 1) ))

# Gate: recording trace events may cost at most 25% wall clock. The
# budget was 10% when the trace sink was Rc<RefCell>, then 15% when it
# became Arc<Mutex> (sinks must be Send for the epoch engine). Repeated
# runs of identical code on a single-CPU host measure the ratio anywhere
# from 1.02 to 1.18 — the true cost is ~8-10% with up to +/-8% run-to-run
# wall-clock noise on top — so 1.150 had itself become a coin flip at the
# tail. 1.250 is outside the observed noise band and still fails loudly
# if recording ever becomes structurally expensive.
if [ "$trace_overhead_milli" -gt 1250 ]; then
    echo "bench.sh: FAILED — tracing overhead $((trace_overhead_milli / 10 - 100))% exceeds the 25% budget" >&2
    exit 1
fi
echo "   tracing overhead ratio: $((trace_overhead_milli / 1000)).$(printf '%03d' $((trace_overhead_milli % 1000))) (budget 1.250)"

# Gate: a warm re-run restores every cell from disk and must be at
# least 10x faster than simulating them cold.
if [ "$cache_speedup_milli" -lt 10000 ]; then
    echo "bench.sh: FAILED — warm cache re-run only $((cache_speedup_milli / 1000)).$(printf '%03d' $((cache_speedup_milli % 1000)))x faster than cold (floor 10x)" >&2
    exit 1
fi
echo "   warm-cache speedup: $((cache_speedup_milli / 1000)).$(printf '%03d' $((cache_speedup_milli % 1000)))x (floor 10x)"

cat > "$out" <<EOF
{
  "command": "experiments $cmd --quick",
  "jobs": 1,
  "artifacts_identical": true,
  "total_sim_cycles": $sim_cycles,
  "total_mem_events": $mem_events,
  "skip": {
    "host_cpus": $host_cpus,
    "wall_seconds": $((skip_ms / 1000)).$(printf '%03d' $((skip_ms % 1000))),
    "sim_cycles_per_sec": $skip_cps,
    "memory_events_per_sec": $skip_eps
  },
  "no_skip": {
    "host_cpus": $host_cpus,
    "wall_seconds": $((noskip_ms / 1000)).$(printf '%03d' $((noskip_ms % 1000))),
    "sim_cycles_per_sec": $noskip_cps
  },
  "trace": {
    "host_cpus": $host_cpus,
    "wall_seconds": $((traced_ms / 1000)).$(printf '%03d' $((traced_ms % 1000))),
    "overhead_ratio": $((trace_overhead_milli / 1000)).$(printf '%03d' $((trace_overhead_milli % 1000))),
    "budget_ratio": 1.250
  },
  "intra": {
    "workers_requested": 4,
    "host_cpus": $host_cpus,
    "artifacts_identical": true,
    "serial_wall_seconds": $((intraserial_ms / 1000)).$(printf '%03d' $((intraserial_ms % 1000))),
    "parallel_wall_seconds": $((intrapar_ms / 1000)).$(printf '%03d' $((intrapar_ms % 1000))),
    "speedup": $((intra_speedup_milli / 1000)).$(printf '%03d' $((intra_speedup_milli % 1000)))
  },
  "cache": {
    "host_cpus": $host_cpus,
    "artifacts_identical": true,
    "cold_wall_seconds": $((cachecold_ms / 1000)).$(printf '%03d' $((cachecold_ms % 1000))),
    "warm_wall_seconds": $((cachewarm_ms / 1000)).$(printf '%03d' $((cachewarm_ms % 1000))),
    "speedup": $((cache_speedup_milli / 1000)).$(printf '%03d' $((cache_speedup_milli % 1000))),
    "floor": 10.0
  },
  "speedup": $((speedup_milli / 1000)).$(printf '%03d' $((speedup_milli % 1000)))
}
EOF
echo "== wrote $out =="
cat "$out"
