#!/usr/bin/env bash
# Tier-1 verification. The workspace has zero external dependencies, so
# everything here runs with --offline; a network fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== doctests (offline) =="
cargo test -q --workspace --offline --doc

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Style checks are skipped (with a warning) when the component is not
# installed, but when present their findings FAIL the build — a clean
# tree locally must mean a clean tree for everyone.
echo "== fmt =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping"
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --offline --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

echo "== cgct-lint (determinism & purity static analysis) =="
# Self-test first: every rule must fire with its exact expected span on
# seeded injected violations, or the gate below proves nothing.
target/release/cgct-lint --self-test
# The tree itself must be clean modulo the (shrink-only) baseline.
target/release/cgct-lint --root . --format json --baseline lint_baseline.json
# Injection smoke: a freshly planted violation in a pure crate must
# fail the gate — the binary wired here actually bites.
lint_dir="$(mktemp -d)"
mkdir -p "$lint_dir/crates/sim/src"
cat > "$lint_dir/crates/sim/src/bad.rs" <<'EOF'
//! Injected fixture: must trip D001, D002, and D004.
use std::collections::HashMap;
use std::time::Instant;

pub fn bad() -> Option<String> {
    let _: HashMap<u8, u8> = HashMap::new();
    let _ = Instant::now();
    std::env::var("CGCT_INJECTED").ok()
}
EOF
if target/release/cgct-lint --root "$lint_dir" > /dev/null; then
    echo "cgct-lint failed to flag an injected violation"
    rm -rf "$lint_dir"
    exit 1
fi
rm -rf "$lint_dir"
echo "cgct-lint clean; self-test and injection smoke passed"

echo "== exhaustive model checker (3 nodes x 1 region x 2 lines) =="
cargo run --release -p cgct-verify --offline --bin cgct-verify -- --nodes 3 --lines 2

echo "== exhaustive model checker: directory + hierarchical machines =="
cargo run --release -p cgct-verify --offline --bin cgct-verify -- --protocol dir-cgct
cargo run --release -p cgct-verify --offline --bin cgct-verify -- \
    --protocol hierarchical --clusters 2
# The new-mode fault injections must be *caught*: each seeded mutation
# exits nonzero with a counterexample trace.
if cargo run --release -p cgct-verify --offline --bin cgct-verify -- \
    --protocol dir-cgct --mutate stale-region-dir-cache > /dev/null 2>&1; then
    echo "stale-region-dir-cache fault was not caught"
    exit 1
fi
if cargo run --release -p cgct-verify --offline --bin cgct-verify -- \
    --protocol hierarchical --clusters 2 --mutate skip-cluster-invalidation \
    > /dev/null 2>&1; then
    echo "skip-cluster-invalidation fault was not caught"
    exit 1
fi
echo "new-mode fixpoints clean; seeded faults caught"

echo "== event-driven vs cycle-stepped equivalence =="
cargo test -q --release -p cgct-system --offline --test event_skip_equivalence

echo "== intra-run epoch-engine determinism (1 vs 2 vs 4 workers) =="
cargo test -q --release -p cgct-system --offline --test intra_parallel_determinism

# The A/B smokes below compare repeated runs of the same commands; the
# content-addressed result cache would let later runs restore the first
# run's cells instead of exercising the simulator, so it is disabled for
# all of them and re-enabled only in its own smoke at the end.
export CGCT_CACHE=0

echo "== sanitizer smoke: experiments all --quick, byte-compared =="
san_dir="$(mktemp -d)"
trap 'rm -rf "$san_dir"' EXIT
CGCT_JOBS=1 target/release/experiments all --quick --json "$san_dir/plain" \
    > "$san_dir/plain.md"
CGCT_JOBS=1 CGCT_SANITIZE=1 CGCT_SANITIZE_INTERVAL=4096 \
    target/release/experiments all --quick --json "$san_dir/sanitized" \
    > "$san_dir/sanitized.md"
# The sanitizer is read-only: every artifact except the wall-clock
# timing log must be byte-identical with and without it.
for f in "$san_dir"/plain/*.json; do
    name="$(basename "$f")"
    [ "$name" = "timing.json" ] && continue
    cmp -s "$f" "$san_dir/sanitized/$name" || {
        echo "sanitized artifact differs: $name"
        exit 1
    }
done
cmp -s "$san_dir/plain.md" "$san_dir/sanitized.md" || {
    echo "sanitized report differs"
    exit 1
}
echo "sanitized artifacts byte-identical"

echo "== trace smoke: experiments directory --quick --trace, validated =="
trace_dir="$san_dir/trace"
CGCT_JOBS=1 target/release/experiments directory --quick \
    --trace "$trace_dir" --json "$san_dir/traced_json" > "$san_dir/traced.md"
# Tracing is pure observation: every non-trace artifact must be
# byte-identical to an untraced run of the same command.
CGCT_JOBS=1 target/release/experiments directory --quick \
    --json "$san_dir/untraced_json" > "$san_dir/untraced.md"
for f in "$san_dir"/untraced_json/*.json; do
    name="$(basename "$f")"
    [ "$name" = "timing.json" ] && continue
    cmp -s "$f" "$san_dir/traced_json/$name" || {
        echo "traced artifact differs: $name"
        exit 1
    }
done
cmp -s "$san_dir/traced.md" "$san_dir/untraced.md" || {
    echo "traced report differs"
    exit 1
}
# Chrome JSON parses and is per-track monotonic; the summary
# round-trips byte-exactly and obeys the Figure 6 latency ordering.
target/release/trace_check "$trace_dir"
echo "trace artifacts validated, non-trace artifacts byte-identical"

echo "== intra-parallel smoke: directory --quick, 2 workers vs --intra-serial =="
CGCT_JOBS=1 target/release/experiments directory --quick --intra-serial \
    --json "$san_dir/intra1" > "$san_dir/intra1.md"
CGCT_JOBS=1 CGCT_INTRA_JOBS=2 target/release/experiments directory --quick \
    --json "$san_dir/intra2" > "$san_dir/intra2.md"
# The epoch engine is a model variant but must be byte-identical across
# its own worker counts (DESIGN.md, "Concurrency & determinism model").
for f in "$san_dir"/intra1/*.json; do
    name="$(basename "$f")"
    [ "$name" = "timing.json" ] && continue
    cmp -s "$f" "$san_dir/intra2/$name" || {
        echo "intra-parallel artifact differs: $name"
        exit 1
    }
done
cmp -s "$san_dir/intra1.md" "$san_dir/intra2.md" || {
    echo "intra-parallel report differs"
    exit 1
}
echo "intra-parallel artifacts byte-identical across worker counts"

echo "== result-cache smoke: fig7 --quick twice, warm run all-hits =="
cache_dir="$san_dir/cache_entries"
CGCT_JOBS=1 CGCT_CACHE=1 CGCT_CACHE_DIR="$cache_dir" \
    target/release/experiments fig7 --quick --json "$san_dir/cache_cold" \
    > "$san_dir/cache_cold.md" 2> "$san_dir/cache_cold.log"
CGCT_JOBS=1 CGCT_CACHE=1 CGCT_CACHE_DIR="$cache_dir" \
    target/release/experiments fig7 --quick --json "$san_dir/cache_warm" \
    > "$san_dir/cache_warm.md" 2> "$san_dir/cache_warm.log"
# The cold run must simulate everything; the warm one must simulate
# nothing — and still produce byte-identical artifacts.
grep -q "0 cells restored, " "$san_dir/cache_cold.log" || {
    echo "cold run unexpectedly hit the (fresh) cache"
    exit 1
}
grep -q " cells restored, 0 simulated" "$san_dir/cache_warm.log" || {
    echo "warm run simulated cells it should have restored"
    exit 1
}
for f in "$san_dir"/cache_cold/*.json; do
    name="$(basename "$f")"
    [ "$name" = "timing.json" ] && continue # wall times differ by design
    cmp -s "$f" "$san_dir/cache_warm/$name" || {
        echo "cached artifact differs: $name"
        exit 1
    }
done
cmp -s "$san_dir/cache_cold.md" "$san_dir/cache_warm.md" || {
    echo "cached report differs"
    exit 1
}
# Poison one entry (truncate it mid-payload): the corrupt entry must be
# detected, re-simulated without a panic, and the output unchanged.
poisoned="$(find "$cache_dir" -name '*.json' | sort | head -1)"
head -c 64 "$poisoned" > "$poisoned.cut" && mv "$poisoned.cut" "$poisoned"
CGCT_JOBS=1 CGCT_CACHE=1 CGCT_CACHE_DIR="$cache_dir" \
    target/release/experiments fig7 --quick --json "$san_dir/cache_healed" \
    > "$san_dir/cache_healed.md" 2> "$san_dir/cache_healed.log"
grep -q " cells restored, 1 simulated" "$san_dir/cache_healed.log" || {
    echo "poisoned entry was not re-simulated exactly once"
    exit 1
}
cmp -s "$san_dir/cache_cold.md" "$san_dir/cache_healed.md" || {
    echo "report differs after healing a poisoned cache entry"
    exit 1
}
echo "warm run all-hits and byte-identical; poisoned entry healed"

echo "== checkpoint smoke: run ocean, interrupt, resume, byte-compared =="
CGCT_JOBS=1 target/release/experiments run ocean --quick --seed 3 \
    > "$san_dir/full_run.json" 2> /dev/null
CGCT_JOBS=1 target/release/experiments run ocean --quick --seed 3 \
    --checkpoint "$san_dir/ck.json" --checkpoint-every 3000 --stop-after 4 \
    > /dev/null 2> /dev/null
CGCT_JOBS=1 target/release/experiments run --resume "$san_dir/ck.json" --quick \
    > "$san_dir/resumed_run.json" 2> /dev/null
cmp -s "$san_dir/full_run.json" "$san_dir/resumed_run.json" || {
    echo "resumed run differs from uninterrupted run"
    exit 1
}
echo "resumed run byte-identical to uninterrupted run"

echo "== bench harness smoke (one command, quick) =="
smoke_out="$(mktemp)"
CGCT_BENCH_CMD=directory scripts/bench.sh "$smoke_out"
rm -f "$smoke_out"

echo "ci.sh: OK"
