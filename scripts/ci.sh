#!/usr/bin/env bash
# Tier-1 verification. The workspace has zero external dependencies, so
# everything here runs with --offline; a network fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== doctests (offline) =="
cargo test -q --workspace --offline --doc

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Style checks are best-effort: skipped (with a warning) when the
# component is not installed, and fmt/clippy findings do not fail CI.
echo "== fmt (best effort) =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check || echo "warning: rustfmt found formatting diffs"
else
    echo "rustfmt not installed; skipping"
fi

echo "== clippy (best effort) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --offline -- -D warnings || echo "warning: clippy reported lints"
else
    echo "clippy not installed; skipping"
fi

echo "== bench harness smoke (one command, quick) =="
smoke_out="$(mktemp)"
CGCT_BENCH_CMD=directory scripts/bench.sh "$smoke_out"
rm -f "$smoke_out"

echo "ci.sh: OK"
